"""Determinism rules (DET001-DET005).

Bit-identical replay is the oracle every fast-path optimisation in this
repository is tested against, so simulation code must never let interpreter
state leak into model behaviour.  These rules police the known leak vectors
inside the simulation packages (``repro/{sim,core,protocols,network,memory,
processor}``); ``repro/sim/randomness.py`` is exempt -- it is the one module
allowed to wrap :mod:`random` behind a seeded facade.

* DET001 -- iteration over a ``set``/``frozenset`` (literal, constructor, or
  a local name bound to one).  Set order depends on insertion history and,
  for strings, on the per-process hash seed; wrap in ``sorted(...)``.
* DET002 -- iterating a dict view (``.keys()``/``.values()``/``.items()``)
  in a loop whose body schedules, sends or broadcasts.  Insertion order is
  deterministic *today*, but a refactor that changes build order silently
  reorders events; make the order explicit (or suppress with the reason the
  insertion order is canonical).
* DET003 -- importing :mod:`random` (use ``repro.sim.randomness``).
* DET004 -- wall-clock reads (``time.time``/``perf_counter``/``monotonic``,
  ``datetime.now``/``utcnow``).
* DET005 -- calls to ``id()`` or ``hash()``: both are interpreter state and
  must never key or order simulation behaviour.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Set, Tuple

from repro.lint.framework import (
    SEVERITY_ERROR,
    FileContext,
    Finding,
    Rule,
    enclosing_functions,
)

_SCOPE = re.compile(r"repro/(sim|core|protocols|network|memory|processor)/")
_EXEMPT_SUFFIXES = ("repro/sim/randomness.py",)


def in_determinism_scope(path: str) -> bool:
    """True for files inside the simulation packages (fixtures mirror them)."""
    return bool(_SCOPE.search(path)) and not path.endswith(_EXEMPT_SUFFIXES)


class DeterminismRule(Rule):
    """Base: applies only inside the simulation packages."""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not in_determinism_scope(ctx.path):
            return
        yield from self.check_scoped(ctx)

    def check_scoped(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _set_bound_names(tree: ast.AST) -> Set[Tuple[ast.AST, str]]:
    """(enclosing function, name) pairs directly bound to a set expression."""
    owners = enclosing_functions(tree)
    bound: Set[Tuple[ast.AST, str]] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and _is_set_expr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bound.add((owners[node], target.id))
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if _is_set_expr(node.value) and isinstance(node.target, ast.Name):
                bound.add((owners[node], node.target.id))
    return bound


class SetIterationRule(DeterminismRule):
    id = "DET001"
    severity = SEVERITY_ERROR
    summary = "iteration over a set/frozenset (order is interpreter state)"

    def check_scoped(self, ctx: FileContext) -> Iterator[Finding]:
        bound = _set_bound_names(ctx.tree)
        owners = enclosing_functions(ctx.tree)

        def flag(iter_node: ast.AST, where: ast.AST) -> bool:
            if _is_set_expr(iter_node):
                return True
            return isinstance(iter_node, ast.Name) and (
                (owners[where], iter_node.id) in bound
            )

        for node in ast.walk(ctx.tree):
            iters: List[ast.AST] = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for iter_node in iters:
                if flag(iter_node, node):
                    yield self.finding(
                        ctx,
                        iter_node,
                        "iterating a set: order depends on interpreter "
                        "state; wrap in sorted(...)",
                    )


_SCHEDULING_NAMES = ("send", "broadcast")


def _is_scheduling_call(node: ast.Call) -> bool:
    func = node.func
    name = ""
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    return "sched" in name or name in _SCHEDULING_NAMES


class DictViewSchedulingRule(DeterminismRule):
    id = "DET002"
    severity = SEVERITY_ERROR
    summary = "dict-view iteration feeding schedule/send/broadcast calls"

    def check_scoped(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.For):
                continue
            iter_node = node.iter
            if not (
                isinstance(iter_node, ast.Call)
                and isinstance(iter_node.func, ast.Attribute)
                and iter_node.func.attr in ("keys", "values", "items")
                and not iter_node.args
            ):
                continue
            body_calls = [
                inner
                for stmt in node.body
                for inner in ast.walk(stmt)
                if isinstance(inner, ast.Call) and _is_scheduling_call(inner)
            ]
            if body_calls:
                yield self.finding(
                    ctx,
                    iter_node,
                    f"dict .{iter_node.func.attr}() order reaches "
                    f"scheduling ({ast.unparse(body_calls[0].func)}); make "
                    "the iteration order explicit",
                )


class RandomImportRule(DeterminismRule):
    id = "DET003"
    severity = SEVERITY_ERROR
    summary = "import of random outside repro.sim.randomness"

    def check_scoped(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root == "random" or alias.name.endswith(".random"):
                        yield self.finding(
                            ctx,
                            node,
                            f"import of {alias.name!r}: use "
                            "repro.sim.randomness.DeterministicRandom",
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module.split(".")[0] == "random" or module.endswith(".random"):
                    yield self.finding(
                        ctx,
                        node,
                        f"import from {module!r}: use "
                        "repro.sim.randomness.DeterministicRandom",
                    )


_WALL_CLOCK_TIME = (
    "time",
    "time_ns",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
)
_WALL_CLOCK_DATETIME = ("now", "utcnow", "today")


class WallClockRule(DeterminismRule):
    id = "DET004"
    severity = SEVERITY_ERROR
    summary = "wall-clock read (time.time / datetime.now and friends)"

    def check_scoped(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in _WALL_CLOCK_TIME:
                        yield self.finding(
                            ctx,
                            node,
                            f"wall-clock import time.{alias.name}: simulated "
                            "time comes from Simulator.now",
                        )
            elif isinstance(node, ast.Attribute) and isinstance(
                node.value, ast.Name
            ):
                base, attr = node.value.id, node.attr
                if (base == "time" and attr in _WALL_CLOCK_TIME) or (
                    base in ("datetime", "date")
                    and attr in _WALL_CLOCK_DATETIME
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"wall-clock read {base}.{attr}: simulated time "
                        "comes from Simulator.now",
                    )


class InterpreterIdentityRule(DeterminismRule):
    id = "DET005"
    severity = SEVERITY_ERROR
    summary = "id()/hash() call (interpreter identity as model state)"

    def check_scoped(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("id", "hash")
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"{node.func.id}() is interpreter state; never key or "
                    "order simulation behaviour with it",
                )


RULES = (
    SetIterationRule(),
    DictViewSchedulingRule(),
    RandomImportRule(),
    WallClockRule(),
    InterpreterIdentityRule(),
)
