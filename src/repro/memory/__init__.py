"""Memory-hierarchy substrate: blocks, coherence states, cache arrays, MSHRs."""

from repro.memory.block import BlockAddress, AddressSpace
from repro.memory.coherence import (
    CacheState,
    AccessType,
    is_stable,
    can_read,
    can_write,
    owns_data,
)
from repro.memory.cache import (
    CACHE_ARRAYS,
    DEFAULT_CACHE_ARRAY,
    CacheArray,
    CacheLine,
    EvictionResult,
    PackedCacheArray,
    make_cache_array,
)
from repro.memory.mshr import MSHRFile, MSHREntry, MSHRFullError

__all__ = [
    "BlockAddress",
    "AddressSpace",
    "CacheState",
    "AccessType",
    "is_stable",
    "can_read",
    "can_write",
    "owns_data",
    "CacheArray",
    "PackedCacheArray",
    "CACHE_ARRAYS",
    "DEFAULT_CACHE_ARRAY",
    "make_cache_array",
    "CacheLine",
    "EvictionResult",
    "MSHRFile",
    "MSHREntry",
    "MSHRFullError",
]
