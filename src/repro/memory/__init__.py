"""Memory-hierarchy substrate: blocks, coherence states, cache arrays, MSHRs."""

from repro.memory.block import BlockAddress, AddressSpace
from repro.memory.coherence import (
    CacheState,
    AccessType,
    is_stable,
    can_read,
    can_write,
    owns_data,
)
from repro.memory.cache import CacheArray, CacheLine, EvictionResult
from repro.memory.mshr import MSHRFile, MSHREntry, MSHRFullError

__all__ = [
    "BlockAddress",
    "AddressSpace",
    "CacheState",
    "AccessType",
    "is_stable",
    "can_read",
    "can_write",
    "owns_data",
    "CacheArray",
    "CacheLine",
    "EvictionResult",
    "MSHRFile",
    "MSHREntry",
    "MSHRFullError",
]
