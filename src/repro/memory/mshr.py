"""Miss Status Holding Registers (transaction buffers).

Cache and memory controllers track in-flight coherence transactions here.
The paper assumes up to 8 outstanding transactions per processor when sizing
endpoint buffering (Section 2.2, "Buffering"); our processor model is
blocking (at most one outstanding demand miss), but writebacks and protocol
races still require multiple simultaneous entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional


class MSHRFullError(RuntimeError):
    """Raised when a controller tries to exceed its outstanding-miss limit."""


@dataclass(slots=True)
class MSHREntry:
    """State of one in-flight transaction for a single block.

    The protocol-specific bookkeeping that used to live in a per-entry
    ``metadata`` dict is typed slots now: an entry is touched several times
    per miss on the hottest protocol paths, and slot access is both faster
    and self-documenting.  ``deferred_forwards`` / ``owed`` stay ``None``
    until first use so the common raceless miss allocates no lists.
    """

    block: int
    kind: str  # e.g. "GETS", "GETM", "UPGRADE", "PUTM"
    issue_time: int
    requester: int
    transient_state: str = "pending"
    acks_expected: int = 0
    acks_received: int = 0
    data_received: bool = False
    ordered: bool = False  # TS-Snoop: own transaction seen in order
    retries: int = 0
    #: completion callback handed to the controller by the processor
    done: Optional[Any] = None
    #: the AccessType that missed
    access_type: Any = None
    #: the request MessageKind in flight (directory retries re-send it)
    req_kind: Any = None
    #: version token carried by the data response
    data_version: int = 0
    #: the data came from another cache (3-hop / dirty miss)
    data_from_cache: bool = False
    #: MESI: the data response granted clean exclusivity (install in E)
    data_exclusive: bool = False
    #: MOESI: own GETM ordered while we held O; permission-only upgrade
    upgrade: bool = False
    #: invalidation acks the directory told us to expect; None = no data yet
    acks_required: Optional[int] = None
    #: forwards deferred while our own fill is in flight (directory caches)
    deferred_forwards: Optional[List[Any]] = None
    #: an invalidation raced with our GETS fill; drop the line on completion
    invalidate_on_fill: bool = False
    #: TS-Snoop logical state our ordered-but-unfilled miss holds
    logical_state: Any = None
    #: TS-Snoop data responses owed to requesters ordered behind our miss
    owed: Optional[List[Any]] = None
    #: physical times recorded for latency accounting (TS-Snoop)
    data_time: Optional[int] = None
    ordered_time: Optional[int] = None

    @property
    def all_acks_received(self) -> bool:
        return self.acks_received >= self.acks_expected

    @property
    def complete(self) -> bool:
        """A demand miss is complete once data and all acks have arrived."""
        return self.data_received and self.all_acks_received


class MSHRFile:
    """A bounded set of MSHR entries indexed by block number."""

    def __init__(self, capacity: int = 16, name: str = "mshr") -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.name = name
        self._entries: Dict[int, MSHREntry] = {}
        #: Bound ``dict.get`` over the entry table -- the per-message lookup
        #: is hot enough that controllers pre-bind this to skip a call layer.
        self.get_entry = self._entries.get
        self.peak_occupancy = 0
        self.total_allocations = 0

    # ------------------------------------------------------------ life cycle
    def allocate(
        self, block: int, kind: str, issue_time: int, requester: int
    ) -> MSHREntry:
        if block in self._entries:
            raise ValueError(f"{self.name}: block {block} already in flight")
        if len(self._entries) >= self.capacity:
            raise MSHRFullError(f"{self.name}: all {self.capacity} MSHRs in use")
        entry = MSHREntry(
            block=block, kind=kind, issue_time=issue_time, requester=requester
        )
        self._entries[block] = entry
        self.total_allocations += 1
        self.peak_occupancy = max(self.peak_occupancy, len(self._entries))
        return entry

    def release(self, block: int) -> MSHREntry:
        if block not in self._entries:
            raise KeyError(f"{self.name}: no in-flight entry for block {block}")
        return self._entries.pop(block)

    # ---------------------------------------------------------------- lookup
    def get(self, block: int) -> Optional[MSHREntry]:
        return self._entries.get(block)

    def __contains__(self, block: int) -> bool:
        return block in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def entries(self) -> List[MSHREntry]:
        return list(self._entries.values())

    def blocks_in_flight(self) -> List[int]:
        return list(self._entries.keys())
