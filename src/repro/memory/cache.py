"""Set-associative cache arrays with true-LRU replacement.

Models the unified level-two cache of the target system: 4 MB, 4-way,
64-byte blocks (Section 4.2).  The array stores coherence state and a data
version token per line; actual data values are not simulated (the simulator
is a timing/protocol model), but version tokens let the consistency checker
verify that reads observe the latest write in the global order.

Two implementations share one API (the :data:`CACHE_ARRAYS` registry, the
same pattern as ``repro.sim.kernel.SCHEDULERS``):

* :class:`CacheArray` -- the reference implementation, one ``CacheLine``
  heap object per resident line in a per-set dict;
* :class:`PackedCacheArray` -- the default fast path, storing tags, state
  codes, LRU generation stamps, dirty bits and version tokens as parallel
  ``array('q')``/``array('b')`` columns with no per-line objects.

Both are behaviourally identical (verified by property tests and whole-run
equivalence tests); ``SystemConfig.cache_array`` selects one.
"""
# repro-lint: hot

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Union

from repro.memory.coherence import CacheState, STATE_FROM_CODE


@dataclass
class CacheLine:
    """One cache line: tag (block number), state, LRU stamp, version token."""

    block: int
    state: CacheState = CacheState.INVALID
    lru_stamp: int = 0
    dirty: bool = False
    version: int = 0


@dataclass
class EvictionResult:
    """Outcome of allocating a line: which victim (if any) must be evicted."""

    victim_block: Optional[int]
    victim_state: CacheState
    victim_dirty: bool
    victim_version: int = 0

    @property
    def needs_writeback(self) -> bool:
        return self.victim_block is not None and self.victim_state in (
            CacheState.MODIFIED,
            CacheState.OWNED,
        )


class CacheArray:
    """A set-associative array keyed by block number.

    The array tracks only *stable* states; in-flight blocks live in the
    controller's MSHR file until the transaction completes and the line is
    installed with :meth:`install`.
    """

    def __init__(
        self,
        size_bytes: int = 4 * 1024 * 1024,
        associativity: int = 4,
        block_size: int = 64,
        name: str = "L2",
    ) -> None:
        if size_bytes % (associativity * block_size):
            raise ValueError("cache size must divide evenly into sets")
        self.name = name
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.block_size = block_size
        self.num_sets = size_bytes // (associativity * block_size)
        self._sets: Dict[int, Dict[int, CacheLine]] = {}
        self._access_clock = 0

    # ------------------------------------------------------------- indexing
    def set_index(self, block: int) -> int:
        return block % self.num_sets

    def _set_for(self, block: int) -> Dict[int, CacheLine]:
        return self._sets.setdefault(self.set_index(block), {})

    # ---------------------------------------------------------------- lookup
    def lookup(self, block: int) -> Optional[CacheLine]:
        """Return the line holding ``block`` or ``None`` (does not touch LRU)."""
        line = self._sets.get(self.set_index(block), {}).get(block)
        if line is not None and line.state is CacheState.INVALID:
            return None
        return line

    def state_of(self, block: int) -> CacheState:
        line = self.lookup(block)
        return line.state if line is not None else CacheState.INVALID

    def version_of(self, block: int) -> int:
        """Version token of a resident block (0 when the block is absent)."""
        line = self.lookup(block)
        return line.version if line is not None else 0

    def touch(self, block: int) -> None:
        """Update LRU recency for a hit."""
        line = self.lookup(block)
        if line is None:
            raise KeyError(f"touch on missing block {block}")
        self._access_clock += 1
        line.lru_stamp = self._access_clock

    # ------------------------------------------------------------ allocation
    def choose_victim(self, block: int) -> EvictionResult:
        """Decide which line would be evicted to make room for ``block``.

        Does not modify the array.  If the set has a free (or invalid) way,
        no victim is needed.
        """
        cache_set = self._set_for(block)
        if block in cache_set and cache_set[block].state is not CacheState.INVALID:
            return EvictionResult(None, CacheState.INVALID, False)
        live = {
            b: l for b, l in cache_set.items() if l.state is not CacheState.INVALID
        }
        if len(live) < self.associativity:
            return EvictionResult(None, CacheState.INVALID, False)
        # repro-lint: disable=HOT001 -- dict reference implementation; the
        # packed array is the hot default and never takes this path.
        victim = min(live.values(), key=lambda line: line.lru_stamp)
        return EvictionResult(victim.block, victim.state, victim.dirty, victim.version)

    def install(
        self, block: int, state: CacheState, *, version: int = 0, dirty: bool = False
    ) -> EvictionResult:
        """Install ``block`` in ``state``, evicting an LRU victim if needed."""
        if state is CacheState.INVALID:
            raise ValueError("cannot install a line in state I")
        eviction = self.choose_victim(block)
        cache_set = self._set_for(block)
        if eviction.victim_block is not None:
            del cache_set[eviction.victim_block]
        self._access_clock += 1
        cache_set[block] = CacheLine(
            block=block,
            state=state,
            lru_stamp=self._access_clock,
            dirty=dirty,
            version=version,
        )
        return eviction

    def set_state(self, block: int, state: CacheState) -> None:
        """Change the stable state of a resident block (or drop it on I)."""
        cache_set = self._set_for(block)
        line = cache_set.get(block)
        if state is CacheState.INVALID:
            if line is not None:
                del cache_set[block]
            return
        if line is None:
            raise KeyError(f"set_state on missing block {block}")
        line.state = state
        if state not in (CacheState.MODIFIED, CacheState.OWNED):
            line.dirty = False

    def evict(self, block: int) -> Optional[CacheLine]:
        """Forcibly remove a block (silent eviction / invalidation)."""
        cache_set = self._set_for(block)
        return cache_set.pop(block, None)

    def write(self, block: int, version: int) -> None:
        """Record a store to a resident block (bumps the version token)."""
        line = self.lookup(block)
        if line is None:
            raise KeyError(f"write to missing block {block}")
        line.dirty = True
        line.version = version

    # ------------------------------------------------------------ inspection
    def resident_blocks(self) -> Iterator[int]:
        for cache_set in self._sets.values():
            for block, line in cache_set.items():
                if line.state is not CacheState.INVALID:
                    yield block

    def occupancy(self) -> int:
        return sum(1 for _ in self.resident_blocks())

    def set_occupancy(self, set_index: int) -> int:
        return sum(
            1
            for line in self._sets.get(set_index, {}).values()
            if line.state is not CacheState.INVALID
        )

    def __contains__(self, block: int) -> bool:
        return self.lookup(block) is not None


#: Shared "nothing to evict" result.  Callers only read EvictionResult, so
#: the packed array hands every victimless install the same instance.
_NO_VICTIM = EvictionResult(None, CacheState.INVALID, False)


class PackedCacheArray:
    """Allocation-free cache array over parallel integer columns.

    Sets are materialised lazily: the first access to a set appends
    ``associativity`` ways to every column and records the set's base slot in
    ``_set_base``.  A way is empty when its state code is 0 (INVALID).  LRU
    recency is a monotonically increasing generation counter shared with the
    reference implementation's ``_access_clock``, so victim selection is
    bit-identical: stamps are unique and the minimum stamp identifies the
    same victim regardless of storage layout.

    The protocol-facing API (``state_of`` / ``version_of`` / ``touch`` /
    ``install`` / ``set_state`` / ``evict`` / ``write`` / ``choose_victim``)
    never creates per-line objects; :meth:`lookup` materialises a
    :class:`CacheLine` *copy* for tests and inspection only -- mutating it
    does not write back to the array.
    """

    def __init__(
        self,
        size_bytes: int = 4 * 1024 * 1024,
        associativity: int = 4,
        block_size: int = 64,
        name: str = "L2",
    ) -> None:
        if size_bytes % (associativity * block_size):
            raise ValueError("cache size must divide evenly into sets")
        self.name = name
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.block_size = block_size
        self.num_sets = size_bytes // (associativity * block_size)
        # Parallel columns, ``associativity`` consecutive slots per set.
        self._tags = array("q")
        self._states = array("b")
        self._lru = array("q")
        self._dirty = array("b")
        self._versions = array("q")
        self._set_base: Dict[int, int] = {}
        #: block -> live state code; a redundant index over the packed
        #: columns so ``state_of`` -- the once-per-snooped-transaction-
        #: per-node query, the hottest in the simulator -- is one dict get
        #: instead of a set probe.  Maintained at every state mutation
        #: (install / set_state / evict); the columns stay the source of
        #: truth for lookup/victim logic.
        self._state_index: Dict[int, int] = {}
        self._access_clock = 0
        # Extension templates: array-from-array extends are a straight
        # memcpy, list literals are not.
        self._fresh_tags = array("q", [-1] * associativity)
        self._fresh_q = array("q", [0] * associativity)
        self._fresh_b = array("b", [0] * associativity)

    # ------------------------------------------------------------- indexing
    def set_index(self, block: int) -> int:
        return block % self.num_sets

    def _base_for(self, block: int) -> int:
        """Base slot of the block's set, materialising the set on demand."""
        index = block % self.num_sets
        base = self._set_base.get(index)
        if base is None:
            base = len(self._tags)
            self._set_base[index] = base
            self._tags.extend(self._fresh_tags)
            self._states.extend(self._fresh_b)
            self._lru.extend(self._fresh_q)
            self._dirty.extend(self._fresh_b)
            self._versions.extend(self._fresh_q)
        return base

    def _slot_of(self, block: int) -> int:
        """Slot holding ``block`` or -1 (never allocates)."""
        slot = self._set_base.get(block % self.num_sets)
        if slot is None:
            return -1
        tags = self._tags
        states = self._states
        end = slot + self.associativity
        while slot < end:
            if tags[slot] == block and states[slot]:
                return slot
            slot += 1
        return -1

    # ---------------------------------------------------------------- lookup
    def lookup(self, block: int) -> Optional[CacheLine]:
        """A :class:`CacheLine` *copy* of the resident line (tests only)."""
        slot = self._slot_of(block)
        if slot < 0:
            return None
        return CacheLine(
            block=block,
            state=STATE_FROM_CODE[self._states[slot]],
            lru_stamp=self._lru[slot],
            dirty=bool(self._dirty[slot]),
            version=self._versions[slot],
        )

    def state_of(self, block: int) -> CacheState:
        # One dict get against the state index: this probe runs once per
        # snooped transaction per node, the single hottest query in the
        # simulator (code 0 is INVALID, the default for absent blocks).
        return STATE_FROM_CODE[self._state_index.get(block, 0)]

    def version_of(self, block: int) -> int:
        slot = self._slot_of(block)
        return 0 if slot < 0 else self._versions[slot]

    def touch(self, block: int) -> None:
        slot = self._slot_of(block)
        if slot < 0:
            raise KeyError(f"touch on missing block {block}")
        self._access_clock += 1
        self._lru[slot] = self._access_clock

    # ------------------------------------------------------------ allocation
    def choose_victim(self, block: int) -> EvictionResult:
        base = self._base_for(block)
        tags = self._tags
        states = self._states
        lru = self._lru
        victim_slot = -1
        victim_stamp = 0
        live = 0
        for slot in range(base, base + self.associativity):
            if not states[slot]:
                continue
            if tags[slot] == block:
                return EvictionResult(None, CacheState.INVALID, False)
            live += 1
            if victim_slot < 0 or lru[slot] < victim_stamp:
                victim_slot = slot
                victim_stamp = lru[slot]
        if live < self.associativity:
            return EvictionResult(None, CacheState.INVALID, False)
        return EvictionResult(
            tags[victim_slot],
            STATE_FROM_CODE[states[victim_slot]],
            bool(self._dirty[victim_slot]),
            self._versions[victim_slot],
        )

    def install(
        self, block: int, state: CacheState, *, version: int = 0, dirty: bool = False
    ) -> EvictionResult:
        if state is CacheState.INVALID:
            raise ValueError("cannot install a line in state I")
        # Single pass finds the existing line, a free way or the LRU victim
        # (choose_victim's semantics fused with the slot search).  Victim
        # choice depends only on LRU stamps, never on slot positions, so the
        # outcome is identical to the reference implementation's.
        base = self._set_base.get(block % self.num_sets)
        if base is None:
            base = self._base_for(block)
        tags = self._tags
        states = self._states
        lru = self._lru
        end = base + self.associativity
        target = -1
        free = -1
        victim = -1
        victim_stamp = 0
        slot = base
        while slot < end:
            code = states[slot]
            if not code:
                if free < 0:
                    free = slot
            elif tags[slot] == block:
                target = slot
                break
            elif victim < 0 or lru[slot] < victim_stamp:
                victim = slot
                victim_stamp = lru[slot]
            slot += 1
        if target >= 0 or free >= 0:
            eviction = _NO_VICTIM
            if target < 0:
                target = free
        else:
            eviction = EvictionResult(
                tags[victim],
                STATE_FROM_CODE[states[victim]],
                bool(self._dirty[victim]),
                self._versions[victim],
            )
            target = victim
            del self._state_index[tags[victim]]
        self._access_clock += 1
        tags[target] = block
        states[target] = state.code
        lru[target] = self._access_clock
        self._dirty[target] = 1 if dirty else 0
        self._versions[target] = version
        self._state_index[block] = state.code
        return eviction

    def set_state(self, block: int, state: CacheState) -> None:
        slot = self._slot_of(block)
        if state is CacheState.INVALID:
            if slot >= 0:
                self._states[slot] = 0
                del self._state_index[block]
            return
        if slot < 0:
            raise KeyError(f"set_state on missing block {block}")
        self._states[slot] = state.code
        self._state_index[block] = state.code
        if state is not CacheState.MODIFIED and state is not CacheState.OWNED:
            self._dirty[slot] = 0

    def evict(self, block: int) -> Optional[CacheLine]:
        slot = self._slot_of(block)
        if slot < 0:
            return None
        line = CacheLine(
            block=block,
            state=STATE_FROM_CODE[self._states[slot]],
            lru_stamp=self._lru[slot],
            dirty=bool(self._dirty[slot]),
            version=self._versions[slot],
        )
        self._states[slot] = 0
        del self._state_index[block]
        return line

    def write(self, block: int, version: int) -> None:
        slot = self._slot_of(block)
        if slot < 0:
            raise KeyError(f"write to missing block {block}")
        self._dirty[slot] = 1
        self._versions[slot] = version

    # ------------------------------------------------------------ inspection
    def resident_blocks(self) -> Iterator[int]:
        tags = self._tags
        states = self._states
        for slot in range(len(tags)):
            if states[slot]:
                yield tags[slot]

    def occupancy(self) -> int:
        return sum(1 for state in self._states if state)

    def set_occupancy(self, set_index: int) -> int:
        base = self._set_base.get(set_index)
        if base is None:
            return 0
        return sum(
            1 for slot in range(base, base + self.associativity) if self._states[slot]
        )

    def __contains__(self, block: int) -> bool:
        return self._slot_of(block) >= 0


#: Either implementation, for type annotations at the call sites.
AnyCacheArray = Union[CacheArray, PackedCacheArray]

#: Registry of interchangeable cache-array implementations (same pattern as
#: ``repro.sim.kernel.SCHEDULERS``).  "packed" is the fast default; "dict"
#: is the reference kept for equivalence testing.
CACHE_ARRAYS = {"dict": CacheArray, "packed": PackedCacheArray}
DEFAULT_CACHE_ARRAY = "packed"


def make_cache_array(impl: str = DEFAULT_CACHE_ARRAY, **kwargs):
    """Instantiate a registered cache-array implementation by name."""
    try:
        factory = CACHE_ARRAYS[impl]
    except KeyError:
        raise ValueError(
            f"unknown cache array {impl!r}; choose one of {sorted(CACHE_ARRAYS)}"
        ) from None
    return factory(**kwargs)
