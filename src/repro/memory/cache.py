"""Set-associative cache array with true-LRU replacement.

Models the unified level-two cache of the target system: 4 MB, 4-way,
64-byte blocks (Section 4.2).  The array stores coherence state and a data
version token per line; actual data values are not simulated (the simulator
is a timing/protocol model), but version tokens let the consistency checker
verify that reads observe the latest write in the global order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.memory.coherence import CacheState


@dataclass
class CacheLine:
    """One cache line: tag (block number), state, LRU stamp, version token."""

    block: int
    state: CacheState = CacheState.INVALID
    lru_stamp: int = 0
    dirty: bool = False
    version: int = 0


@dataclass
class EvictionResult:
    """Outcome of allocating a line: which victim (if any) must be evicted."""

    victim_block: Optional[int]
    victim_state: CacheState
    victim_dirty: bool
    victim_version: int = 0

    @property
    def needs_writeback(self) -> bool:
        return (self.victim_block is not None
                and self.victim_state in (CacheState.MODIFIED, CacheState.OWNED))


class CacheArray:
    """A set-associative array keyed by block number.

    The array tracks only *stable* states; in-flight blocks live in the
    controller's MSHR file until the transaction completes and the line is
    installed with :meth:`install`.
    """

    def __init__(self, size_bytes: int = 4 * 1024 * 1024, associativity: int = 4,
                 block_size: int = 64, name: str = "L2") -> None:
        if size_bytes % (associativity * block_size):
            raise ValueError("cache size must divide evenly into sets")
        self.name = name
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.block_size = block_size
        self.num_sets = size_bytes // (associativity * block_size)
        self._sets: Dict[int, Dict[int, CacheLine]] = {}
        self._access_clock = 0

    # ------------------------------------------------------------- indexing
    def set_index(self, block: int) -> int:
        return block % self.num_sets

    def _set_for(self, block: int) -> Dict[int, CacheLine]:
        return self._sets.setdefault(self.set_index(block), {})

    # ---------------------------------------------------------------- lookup
    def lookup(self, block: int) -> Optional[CacheLine]:
        """Return the line holding ``block`` or ``None`` (does not touch LRU)."""
        line = self._sets.get(self.set_index(block), {}).get(block)
        if line is not None and line.state is CacheState.INVALID:
            return None
        return line

    def state_of(self, block: int) -> CacheState:
        line = self.lookup(block)
        return line.state if line is not None else CacheState.INVALID

    def touch(self, block: int) -> None:
        """Update LRU recency for a hit."""
        line = self.lookup(block)
        if line is None:
            raise KeyError(f"touch on missing block {block}")
        self._access_clock += 1
        line.lru_stamp = self._access_clock

    # ------------------------------------------------------------ allocation
    def choose_victim(self, block: int) -> EvictionResult:
        """Decide which line would be evicted to make room for ``block``.

        Does not modify the array.  If the set has a free (or invalid) way,
        no victim is needed.
        """
        cache_set = self._set_for(block)
        if block in cache_set and cache_set[block].state is not CacheState.INVALID:
            return EvictionResult(None, CacheState.INVALID, False)
        live = {b: l for b, l in cache_set.items()
                if l.state is not CacheState.INVALID}
        if len(live) < self.associativity:
            return EvictionResult(None, CacheState.INVALID, False)
        victim = min(live.values(), key=lambda line: line.lru_stamp)
        return EvictionResult(victim.block, victim.state, victim.dirty,
                              victim.version)

    def install(self, block: int, state: CacheState, *,
                version: int = 0, dirty: bool = False) -> EvictionResult:
        """Install ``block`` in ``state``, evicting an LRU victim if needed."""
        if state is CacheState.INVALID:
            raise ValueError("cannot install a line in state I")
        eviction = self.choose_victim(block)
        cache_set = self._set_for(block)
        if eviction.victim_block is not None:
            del cache_set[eviction.victim_block]
        self._access_clock += 1
        cache_set[block] = CacheLine(block=block, state=state,
                                     lru_stamp=self._access_clock,
                                     dirty=dirty, version=version)
        return eviction

    def set_state(self, block: int, state: CacheState) -> None:
        """Change the stable state of a resident block (or drop it on I)."""
        cache_set = self._set_for(block)
        line = cache_set.get(block)
        if state is CacheState.INVALID:
            if line is not None:
                del cache_set[block]
            return
        if line is None:
            raise KeyError(f"set_state on missing block {block}")
        line.state = state
        if state not in (CacheState.MODIFIED, CacheState.OWNED):
            line.dirty = False

    def evict(self, block: int) -> Optional[CacheLine]:
        """Forcibly remove a block (silent eviction / invalidation)."""
        cache_set = self._set_for(block)
        return cache_set.pop(block, None)

    def write(self, block: int, version: int) -> None:
        """Record a store to a resident block (bumps the version token)."""
        line = self.lookup(block)
        if line is None:
            raise KeyError(f"write to missing block {block}")
        line.dirty = True
        line.version = version

    # ------------------------------------------------------------ inspection
    def resident_blocks(self) -> Iterator[int]:
        for cache_set in self._sets.values():
            for block, line in cache_set.items():
                if line.state is not CacheState.INVALID:
                    yield block

    def occupancy(self) -> int:
        return sum(1 for _ in self.resident_blocks())

    def set_occupancy(self, set_index: int) -> int:
        return sum(1 for line in self._sets.get(set_index, {}).values()
                   if line.state is not CacheState.INVALID)

    def __contains__(self, block: int) -> bool:
        return self.lookup(block) is not None
