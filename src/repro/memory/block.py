"""Block and address arithmetic.

The target system (Section 4.2) has 1 GiB of globally shared memory spread
across 16 memory controllers (one per node) with 64-byte coherence blocks.
Memory is interleaved across controllers at block granularity, which is how
the home node of a block is determined for the directory protocols and how
the per-block "memory owner bit" of TS-Snoop is stored.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BlockAddress:
    """A block-aligned physical address.

    The class is a thin value object: most of the simulator works with plain
    integer block numbers for speed, and uses :class:`AddressSpace` to map
    between byte addresses, block numbers and home nodes.
    """

    block_number: int
    block_size: int = 64

    def __post_init__(self) -> None:
        if self.block_number < 0:
            raise ValueError("block_number must be non-negative")
        if self.block_size <= 0 or self.block_size & (self.block_size - 1):
            raise ValueError("block_size must be a positive power of two")

    @property
    def byte_address(self) -> int:
        return self.block_number * self.block_size

    @classmethod
    def from_byte_address(cls, address: int, block_size: int = 64) -> "BlockAddress":
        if address < 0:
            raise ValueError("address must be non-negative")
        return cls(address // block_size, block_size)

    def __int__(self) -> int:
        return self.block_number


class AddressSpace:
    """The globally shared physical address space.

    Responsibilities:

    * byte address <-> block number conversion,
    * home-node interleaving (block number modulo node count),
    * bounds checking against the configured memory size.
    """

    def __init__(
        self,
        total_bytes: int = 1 << 30,
        block_size: int = 64,
        num_nodes: int = 16,
    ) -> None:
        if block_size <= 0 or block_size & (block_size - 1):
            raise ValueError("block_size must be a positive power of two")
        if total_bytes % block_size:
            raise ValueError("total_bytes must be a multiple of block_size")
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        self.total_bytes = total_bytes
        self.block_size = block_size
        self.num_nodes = num_nodes
        self.num_blocks = total_bytes // block_size

    # ----------------------------------------------------------- conversions
    def block_of(self, byte_address: int) -> int:
        """Block number containing ``byte_address``."""
        if not 0 <= byte_address < self.total_bytes:
            raise ValueError(
                f"address {byte_address:#x} outside 0..{self.total_bytes:#x}"
            )
        return byte_address // self.block_size

    def block_base(self, block_number: int) -> int:
        """First byte address of a block."""
        self._check_block(block_number)
        return block_number * self.block_size

    def offset_in_block(self, byte_address: int) -> int:
        return byte_address % self.block_size

    # ---------------------------------------------------------------- homing
    def home_node(self, block_number: int) -> int:
        """Node whose memory controller owns this block (interleaved)."""
        self._check_block(block_number)
        return block_number % self.num_nodes

    def home_of(self, block_number: int) -> int:
        """Unchecked :meth:`home_node` for per-message hot paths.

        The single definition of the interleaving: controllers pre-bind this
        so changing the homing scheme changes every call site at once.
        """
        return block_number % self.num_nodes

    def blocks_homed_at(self, node: int, limit: int) -> list[int]:
        """The first ``limit`` block numbers homed at ``node`` (for tests)."""
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range")
        return [node + index * self.num_nodes for index in range(limit)]

    # --------------------------------------------------------------- helpers
    def _check_block(self, block_number: int) -> None:
        if not 0 <= block_number < self.num_blocks:
            raise ValueError(f"block {block_number} outside 0..{self.num_blocks - 1}")

    def contiguous_region(self, start_block: int, num_blocks: int) -> range:
        """A range of block numbers; validates that it fits in memory."""
        self._check_block(start_block)
        if num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        self._check_block(start_block + num_blocks - 1)
        return range(start_block, start_block + num_blocks)

    def footprint_bytes(self, num_blocks: int) -> int:
        return num_blocks * self.block_size
