"""Coherence state machinery shared by all three protocols.

The paper's evaluated protocols are all MSI (Section 4.2), with processors
allowed to silently downgrade S -> I.  We keep the full MOESI enumeration
(Section 3 discusses the general MOESI case and the Synapse-style memory
owner bit) so the library can express O and E as well; the shipped protocol
implementations instantiate the MSI subset, exactly as evaluated.
"""

from __future__ import annotations

from enum import Enum, auto


class CacheState(Enum):
    """Stable MOESI cache states (Sweazey & Smith classification)."""

    MODIFIED = "M"
    OWNED = "O"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Dense integer codes for packed (array-backed) cache storage.  INVALID is
#: 0 so a zero-initialised state column reads as an empty way.
STATE_FROM_CODE = (
    CacheState.INVALID,
    CacheState.SHARED,
    CacheState.EXCLUSIVE,
    CacheState.OWNED,
    CacheState.MODIFIED,
)
for _code, _state in enumerate(STATE_FROM_CODE):
    _state.code = _code
del _code, _state


class AccessType(Enum):
    """Processor-side access categories."""

    LOAD = auto()
    STORE = auto()
    ATOMIC = auto()  # read-modify-write (test-and-set style)


#: Dense integer codes for packed reference streams.
ACCESS_FROM_CODE = (AccessType.LOAD, AccessType.STORE, AccessType.ATOMIC)
# ``needs_write_permission`` is read on every reference and every protocol
# message; a plain member attribute avoids a property call on the hot path.
for _code, _access in enumerate(ACCESS_FROM_CODE):
    _access.code = _code
    _access.needs_write_permission = _access is not AccessType.LOAD
del _code, _access


_STABLE = frozenset(CacheState)
_READABLE = frozenset(
    {CacheState.MODIFIED, CacheState.OWNED, CacheState.EXCLUSIVE, CacheState.SHARED}
)
_WRITABLE = frozenset({CacheState.MODIFIED, CacheState.EXCLUSIVE})
_OWNER = frozenset({CacheState.MODIFIED, CacheState.OWNED, CacheState.EXCLUSIVE})


def is_stable(state: CacheState) -> bool:
    """True for every stable MOESI state (transient states live in MSHRs)."""
    return state in _STABLE


def can_read(state: CacheState) -> bool:
    """May a processor load from a block in this state without a miss?"""
    return state in _READABLE


def can_write(state: CacheState) -> bool:
    """May a processor store to a block in this state without a miss?

    Writing in E silently upgrades to M; writing in O or S requires an
    upgrade (GETM) transaction first.
    """
    return state in _WRITABLE


def owns_data(state: CacheState) -> bool:
    """Is a cache in this state responsible for sourcing the block's data?

    In MOESI the owner is the cache in M, O, or E.  When no cache owns the
    block, memory is the owner (TS-Snoop records this with the per-block
    memory owner bit; directories record it in the directory entry).
    """
    return state in _OWNER


def store_transition(state: CacheState) -> CacheState:
    """Stable-state transition for a store hit (E silently becomes M)."""
    if state is CacheState.EXCLUSIVE:
        return CacheState.MODIFIED
    if state is CacheState.MODIFIED:
        return CacheState.MODIFIED
    raise ValueError(f"store is not a hit in state {state}")


def downgrade_for_remote_gets(
    state: CacheState, protocol_has_owned_state: bool
) -> CacheState:
    """State after observing another processor's GETS while holding data.

    MOESI protocols with an O state keep ownership (M/E -> O); plain MSI
    protocols (the evaluated configuration) downgrade to S and transfer
    ownership back to memory.
    """
    if state in (CacheState.MODIFIED, CacheState.EXCLUSIVE, CacheState.OWNED):
        return CacheState.OWNED if protocol_has_owned_state else CacheState.SHARED
    if state is CacheState.SHARED:
        return CacheState.SHARED
    return CacheState.INVALID


def invalidate() -> CacheState:
    """State after observing a remote GETM (or an invalidation message)."""
    return CacheState.INVALID
