"""Processor model and memory-consistency checking."""

from repro.processor.processor import Processor, ProcessorConfig
from repro.processor.consistency import CoherenceChecker, check_swmr_invariant

__all__ = [
    "Processor",
    "ProcessorConfig",
    "CoherenceChecker",
    "check_swmr_invariant",
]
