"""Processor model and memory-consistency checking."""

from repro.processor.processor import Processor, ProcessorConfig
from repro.processor.consistency import (
    CONSISTENCY_MODELS,
    STORE_BUFFER_CAPACITY,
    TSO_DRAIN_DELAY_NS,
    CoherenceChecker,
    StoreBuffer,
    check_swmr_invariant,
)

__all__ = [
    "Processor",
    "ProcessorConfig",
    "CoherenceChecker",
    "StoreBuffer",
    "CONSISTENCY_MODELS",
    "STORE_BUFFER_CAPACITY",
    "TSO_DRAIN_DELAY_NS",
    "check_swmr_invariant",
]
