"""Litmus-test harness for the consistency-model matrix.

Classic two-core litmus patterns run on the full simulator (real protocol,
real network, real timing) rather than on an abstract memory model.  Each
pattern hand-crafts two tiny reference streams, attaches a load observer to
the two cores' cache controllers, and records the version tokens their loads
return (0 = the initial value, 1 = the other core's store).  One simulated
run yields one outcome tuple; sweeping a grid of per-core start delays
yields the *observed outcome set* for a (pattern, protocol, consistency)
cell.

Patterns (names follow the usual litmus literature):

* ``sb`` -- store buffering.  ``P0: st x; ld y`` / ``P1: st y; ld x``.
  Outcome ``(0, 0)`` (both loads miss both stores) is forbidden under SC
  and is *the* signature of TSO's store->load reordering.
* ``mp`` -- message passing.  ``P0: st data; st flag`` / ``P1: ld flag;
  ld data``.  Outcome ``(1, 0)`` (flag set but stale data) is forbidden
  under both SC and TSO: the store buffer drains in FIFO order.
* ``lb`` -- load buffering.  ``P0: ld y; st x`` / ``P1: ld x; st y``.
  Outcome ``(1, 1)`` requires load->store reordering, which neither model
  performs (loads block in both).

The harness never interprets protocol internals: correctness falls out of
the coherence fabric delivering version tokens, so the same assertions hold
across every protocol in ``repro.protocols.PROTOCOLS``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.memory.coherence import AccessType
from repro.sim.kernel import SimulationError
from repro.system.builder import SystemBuilder
from repro.system.config import SystemConfig
from repro.workloads.generator import Reference

#: Per-core start-delay grid (nanoseconds) swept by :func:`run_litmus`.
#: Near-zero delays race the two cores (exposing store buffering); the
#: large delays give one core time to complete before the other starts
#: (exposing the "other" outcomes, e.g. message passing actually passing).
DEFAULT_DELAYS_NS = (0, 10, 40, 150, 600)

#: Litmus systems are deliberately tiny: two active cores plus two idle
#: nodes so the tested blocks are homed away from both actors (every
#: request crosses the network).
LITMUS_NODES = 4
_BLOCK_X = 2
_BLOCK_Y = 3

_MAX_EVENTS = 2_000_000

_Observations = Dict[int, List[Tuple[int, int]]]


@dataclass(frozen=True)
class LitmusPattern:
    """One litmus shape: stream builder, outcome reader, forbidden sets."""

    name: str
    description: str
    #: Streams for cores 0 and 1 given per-core think instructions.
    streams: Callable[[int, int], Tuple[List[Reference], List[Reference]]]
    #: Reduce the per-core load observations to the outcome tuple.
    outcome: Callable[[_Observations], Tuple[int, int]]
    #: Outcomes each consistency model must never produce.
    forbidden: Mapping[str, frozenset]


@dataclass(frozen=True)
class LitmusResult:
    """The observed outcome set for one (pattern, protocol, model) cell."""

    pattern: str
    protocol: str
    consistency: str
    outcomes: frozenset
    forbidden: frozenset

    @property
    def forbidden_observed(self) -> frozenset:
        """Forbidden outcomes that actually occurred (empty = model holds)."""
        return self.outcomes & self.forbidden

    @property
    def clean(self) -> bool:
        return not self.forbidden_observed


def _observed(records: List[Tuple[int, int]], block: int) -> int:
    for observed_block, version in records:
        if observed_block == block:
            return version
    raise SimulationError(f"no load of block {block} was observed")


def _sb_streams(think0, think1):
    return (
        [
            Reference(_BLOCK_X, AccessType.STORE, think0),
            Reference(_BLOCK_Y, AccessType.LOAD),
        ],
        [
            Reference(_BLOCK_Y, AccessType.STORE, think1),
            Reference(_BLOCK_X, AccessType.LOAD),
        ],
    )


def _sb_outcome(observations):
    return (
        _observed(observations[0], _BLOCK_Y),
        _observed(observations[1], _BLOCK_X),
    )


def _mp_streams(think0, think1):
    return (
        [
            Reference(_BLOCK_X, AccessType.STORE, think0),
            Reference(_BLOCK_Y, AccessType.STORE),
        ],
        [
            Reference(_BLOCK_Y, AccessType.LOAD, think1),
            Reference(_BLOCK_X, AccessType.LOAD),
        ],
    )


def _mp_outcome(observations):
    return (
        _observed(observations[1], _BLOCK_Y),
        _observed(observations[1], _BLOCK_X),
    )


def _lb_streams(think0, think1):
    return (
        [
            Reference(_BLOCK_Y, AccessType.LOAD, think0),
            Reference(_BLOCK_X, AccessType.STORE),
        ],
        [
            Reference(_BLOCK_X, AccessType.LOAD, think1),
            Reference(_BLOCK_Y, AccessType.STORE),
        ],
    )


def _lb_outcome(observations):
    return (
        _observed(observations[0], _BLOCK_Y),
        _observed(observations[1], _BLOCK_X),
    )


PATTERNS: Dict[str, LitmusPattern] = {
    "sb": LitmusPattern(
        name="sb",
        description="store buffering: st x; ld y || st y; ld x",
        streams=_sb_streams,
        outcome=_sb_outcome,
        forbidden={"sc": frozenset({(0, 0)}), "tso": frozenset()},
    ),
    "mp": LitmusPattern(
        name="mp",
        description="message passing: st data; st flag || ld flag; ld data",
        streams=_mp_streams,
        outcome=_mp_outcome,
        forbidden={
            "sc": frozenset({(1, 0)}),
            "tso": frozenset({(1, 0)}),
        },
    ),
    "lb": LitmusPattern(
        name="lb",
        description="load buffering: ld y; st x || ld x; st y",
        streams=_lb_streams,
        outcome=_lb_outcome,
        forbidden={
            "sc": frozenset({(1, 1)}),
            "tso": frozenset({(1, 1)}),
        },
    ),
}


def _run_one(
    pattern: LitmusPattern,
    protocol: str,
    consistency: str,
    delay0_ns: int,
    delay1_ns: int,
) -> Tuple[int, int]:
    """Run one delay point and return its outcome tuple."""
    config = SystemConfig(
        num_nodes=LITMUS_NODES,
        protocol=protocol,
        consistency=consistency,
        enable_checker=True,
    )
    ipns = config.instructions_per_ns
    stream0, stream1 = pattern.streams(delay0_ns * ipns, delay1_ns * ipns)
    streams: List[List[Reference]] = [stream0, stream1]
    streams.extend([] for _ in range(2, config.num_nodes))

    system = SystemBuilder(config).build(streams)
    observations: _Observations = {0: [], 1: []}
    for core in (0, 1):
        records = observations[core]
        system.controllers[core].load_observer = (
            lambda block, version, _records=records: _records.append(
                (block, version)
            )
        )

    for processor in system.processors:
        processor.start()
    while not system.all_finished():
        processed = system.sim.run(max_events=_MAX_EVENTS)
        if processed == 0 and not system.all_finished():
            raise SimulationError(
                f"litmus {pattern.name}/{protocol}/{consistency} deadlocked "
                f"at delays ({delay0_ns}, {delay1_ns})"
            )
    if system.checker is not None:
        system.checker.assert_clean()
    return pattern.outcome(observations)


def run_litmus(
    pattern: str,
    protocol: str,
    consistency: str,
    *,
    delays_ns: Iterable[int] = DEFAULT_DELAYS_NS,
) -> LitmusResult:
    """Sweep the delay grid for one cell and collect the outcome set."""
    try:
        spec = PATTERNS[pattern]
    except KeyError:
        raise ValueError(
            f"unknown litmus pattern {pattern!r}; "
            f"expected one of {sorted(PATTERNS)}"
        ) from None
    try:
        forbidden = spec.forbidden[consistency]
    except KeyError:
        raise ValueError(
            f"unknown consistency model {consistency!r}; "
            f"expected one of {sorted(spec.forbidden)}"
        ) from None

    delays = tuple(delays_ns)
    outcomes = set()
    for delay0 in delays:
        for delay1 in delays:
            outcomes.add(_run_one(spec, protocol, consistency, delay0, delay1))
    return LitmusResult(
        pattern=pattern,
        protocol=protocol,
        consistency=consistency,
        outcomes=frozenset(outcomes),
        forbidden=forbidden,
    )


def litmus_matrix(
    protocols: Iterable[str],
    consistencies: Iterable[str] = ("sc", "tso"),
    patterns: Optional[Iterable[str]] = None,
    *,
    delays_ns: Iterable[int] = DEFAULT_DELAYS_NS,
) -> Dict[Tuple[str, str, str], LitmusResult]:
    """Run every (pattern, protocol, consistency) cell of the matrix."""
    names = tuple(patterns) if patterns is not None else tuple(PATTERNS)
    delays = tuple(delays_ns)
    results = {}
    for pattern in names:
        for protocol in protocols:
            for consistency in consistencies:
                results[(pattern, protocol, consistency)] = run_litmus(
                    pattern, protocol, consistency, delays_ns=delays
                )
    return results
