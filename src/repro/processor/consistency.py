"""Coherence / consistency checking.

The paper leans on formal work (Sorin et al.; Afek et al.) showing that
snooping correctness depends only on the order in which transactions are
processed.  Our simulator carries a per-block *version* token through every
data message; the checker uses those tokens to detect coherence violations
during test runs:

* **write serialisation** -- versions written to a block must be strictly
  increasing in completion order (two caches believing they both own a block
  produce duplicate or decreasing versions);
* **no stale reads going backward** -- a given processor must never observe
  a block's version moving backward;
* **no reads from the future** -- a read can only return a version some
  write has produced.

A separate helper, :func:`check_swmr_invariant`, inspects the stable cache
states directly and asserts the single-writer / multiple-reader property.

This module also hosts the consistency-*model* axis: the constants that
``SystemConfig.consistency`` validates against and the value-level
:class:`StoreBuffer` the TSO processor drives (see
:mod:`repro.processor.litmus` for the litmus-test harness built on top).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from repro.memory.coherence import CacheState

#: Consistency models selectable via ``SystemConfig.consistency``.  "sc"
#: (sequential consistency, the blocking-processor default) is bit-identical
#: to the pre-matrix simulator; "tso" adds a per-core FIFO store buffer with
#: load forwarding (PAPERS.md, "A formalisation of the SPARC TSO memory
#: model").
CONSISTENCY_MODELS = ("sc", "tso")

#: FIFO store-buffer depth per core under TSO (the paper's Section 2.2
#: outstanding-transaction sizing); a full buffer stalls the core until the
#: head store drains.
STORE_BUFFER_CAPACITY = 8

#: Rest delay before a buffered store starts draining to the cache.  This is
#: what makes store->load reordering *observable*: younger loads issue and
#: get ordered during the window.  With a zero delay the drain would be
#: indistinguishable from SC's blocking store.
TSO_DRAIN_DELAY_NS = 30


@dataclass
class Violation:
    """One detected coherence violation."""

    kind: str
    block: int
    node: int
    detail: str
    time: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"[{self.kind}] block {self.block} node {self.node} "
            f"at t={self.time}: {self.detail}"
        )


class CoherenceChecker:
    """Collects read/write observations and flags violations."""

    def __init__(self) -> None:
        self.violations: List[Violation] = []
        self._latest_write: Dict[int, int] = {}
        self._writes_seen: Dict[int, List[Tuple[int, int, int]]] = {}
        self._last_read_version: Dict[Tuple[int, int], int] = {}
        self.writes_recorded = 0
        self.reads_recorded = 0

    # -------------------------------------------------------------- recording
    def record_write(self, node: int, block: int, version: int, time: int) -> None:
        self.writes_recorded += 1
        previous = self._latest_write.get(block, 0)
        if version <= previous:
            self.violations.append(
                Violation(
                    kind="write-serialisation",
                    block=block,
                    node=node,
                    time=time,
                    detail=(
                        f"wrote version {version} but version {previous} "
                        f"was already written"
                    ),
                )
            )
        self._latest_write[block] = max(previous, version)
        self._writes_seen.setdefault(block, []).append((time, node, version))

    def record_read(self, node: int, block: int, version: int, time: int) -> None:
        self.reads_recorded += 1
        latest = self._latest_write.get(block, 0)
        if version > latest:
            self.violations.append(
                Violation(
                    kind="read-from-future",
                    block=block,
                    node=node,
                    time=time,
                    detail=f"read version {version}, newest write is {latest}",
                )
            )
        key = (node, block)
        previous = self._last_read_version.get(key, 0)
        if version < previous:
            self.violations.append(
                Violation(
                    kind="read-went-backward",
                    block=block,
                    node=node,
                    time=time,
                    detail=f"read version {version} after having read {previous}",
                )
            )
        self._last_read_version[key] = max(previous, version)

    # -------------------------------------------------------------- reporting
    @property
    def clean(self) -> bool:
        return not self.violations

    def assert_clean(self) -> None:
        if self.violations:
            summary = "\n".join(str(v) for v in self.violations[:20])
            raise AssertionError(
                f"{len(self.violations)} coherence violations detected:\n{summary}"
            )

    def writes_to(self, block: int) -> List[Tuple[int, int, int]]:
        return list(self._writes_seen.get(block, []))


def _collect_holders(controllers):
    """Stable cache states and version tokens held across ``controllers``.

    Returns ``(holders, versions)``: ``holders[block]`` maps node -> state
    for every non-INVALID resident line, ``versions[(node, block)]`` its
    version token.  Shared by the quiescence invariant checkers below.
    """
    holders: Dict[int, Dict[int, CacheState]] = {}
    versions: Dict[Tuple[int, int], int] = {}
    for controller in controllers:
        cache = controller.cache
        node = controller.node
        for block in cache.resident_blocks():
            state = cache.state_of(block)
            if state is CacheState.INVALID:
                continue
            holders.setdefault(block, {})[node] = state
            versions[(node, block)] = cache.version_of(block)
    return holders, versions


def check_directory_invariant(controllers: Iterable) -> List[str]:
    """Check that directory state agrees with the caches' stable states.

    ``controllers`` are per-node directory cache controllers, each linking
    its home ``DirectoryMemoryController`` as ``memory_controller`` (the
    protocol factory wires this).  Call at quiescence (no in-flight
    transactions).  Clean S evictions are silent, so a sharer vector may be
    a strict *superset* of the actual holders; the invariant is containment
    plus ownership agreement:

    * a MODIFIED entry's owner -- and nobody else -- holds the block, in M
      (or E/M under MESI: the directory does not distinguish the two);
    * SHARED/UNCACHED entries have no M holder anywhere, and every actual
      holder appears in the sharer vector;
    * S holders agree with the home's version token;
    * busy states (DirClassic) have drained.

    Returns human-readable violations (empty when the invariant holds).
    """
    from repro.protocols.directory_state import DirectoryState

    controllers = list(controllers)
    holders, versions = _collect_holders(controllers)
    problems: List[str] = []
    for controller in controllers:
        memory = controller.memory_controller
        if memory is None:
            problems.append(f"node {controller.node}: no linked memory controller")
            continue
        for block, entry in memory.directory.entries():
            block_holders = holders.get(block, {})
            modified = sorted(
                node
                for node, state in block_holders.items()
                if state in (CacheState.MODIFIED, CacheState.EXCLUSIVE)
            )
            if entry.state.is_busy:
                problems.append(
                    f"block {block}: entry busy ({entry.state.value}) at quiescence"
                )
            elif entry.state is DirectoryState.MODIFIED:
                if modified != [entry.owner]:
                    problems.append(
                        f"block {block}: directory owner {entry.owner} but "
                        f"M holders {modified}"
                    )
                extra = sorted(set(block_holders) - {entry.owner})
                if extra:
                    problems.append(
                        f"block {block}: non-owner holders {extra} while "
                        f"directory state is M"
                    )
            else:
                if modified:
                    problems.append(
                        f"block {block}: M holders {modified} but directory "
                        f"state is {entry.state.value}"
                    )
                mask = entry.sharers_mask
                for node in block_holders:
                    if not (mask >> node) & 1:
                        problems.append(
                            f"block {block}: node {node} holds a copy but "
                            f"is missing from the sharer vector"
                        )
                for node in block_holders:
                    version = versions[(node, block)]
                    if version != entry.version:
                        problems.append(
                            f"block {block}: node {node} holds version "
                            f"{version}, home has {entry.version}"
                        )
    return problems


def check_snoop_home_invariant(nodes: Iterable) -> List[str]:
    """Check TS-Snoop home-block owner bits against the caches.

    ``nodes`` are the per-node ``TSSnoopNode`` controllers (each is both
    the cache side and the memory side for its slice).  Call at quiescence.

    * an owner bit naming cache C means C -- and nobody else -- holds the
      block in M (or, under MOESI, in O with every other holder an S copy
      agreeing with the O holder's version);
    * a cleared owner bit (memory owns) means no cache holds the block M or
      O, and every S holder agrees with memory's version token;
    * no writeback may still be buffered.
    """
    node_list = list(nodes)
    holders, versions = _collect_holders(node_list)
    problems: List[str] = []
    for controller in node_list:
        if controller.writeback_buffer:
            problems.append(
                f"node {controller.node}: writeback buffer not drained "
                f"({sorted(controller.writeback_buffer)})"
            )
        for block, home_state in controller.home_blocks.items():
            block_holders = holders.get(block, {})
            modified = sorted(
                node
                for node, state in block_holders.items()
                if state in (CacheState.MODIFIED, CacheState.EXCLUSIVE)
            )
            owned = sorted(
                node
                for node, state in block_holders.items()
                if state is CacheState.OWNED
            )
            if home_state.awaiting_data:
                problems.append(
                    f"block {block}: home still awaiting writeback data at "
                    f"quiescence"
                )
            if home_state.owner is not None:
                if owned:
                    # MOESI: the named owner may hold O while S copies of
                    # the same (dirty) version circulate.
                    if owned != [home_state.owner] or modified:
                        problems.append(
                            f"block {block}: owner bit names "
                            f"{home_state.owner} but O holders are {owned} "
                            f"and M holders are {modified}"
                        )
                    else:
                        owner_version = versions[(home_state.owner, block)]
                        for node in block_holders:
                            if versions[(node, block)] != owner_version:
                                problems.append(
                                    f"block {block}: node {node} holds "
                                    f"version {versions[(node, block)]}, O "
                                    f"owner has {owner_version}"
                                )
                elif modified != [home_state.owner]:
                    problems.append(
                        f"block {block}: owner bit names {home_state.owner} "
                        f"but M holders are {modified}"
                    )
            else:
                if modified or owned:
                    problems.append(
                        f"block {block}: memory owns the block but M "
                        f"holders are {modified} and O holders are {owned}"
                    )
                for node in block_holders:
                    version = versions[(node, block)]
                    if version != home_state.version:
                        problems.append(
                            f"block {block}: node {node} holds version "
                            f"{version}, memory has {home_state.version}"
                        )
    return problems


def check_swmr_invariant(controllers: Iterable) -> List[str]:
    """Check the single-writer / multiple-reader invariant on stable states.

    ``controllers`` is any iterable of objects exposing a ``cache``
    (CacheArray) attribute.  Returns a list of human-readable violations
    (empty when the invariant holds).  Only *stable* states are examined, so
    this should be called when the system is quiescent (no in-flight
    transactions), as the integration tests do.
    """
    holders: Dict[int, List[Tuple[int, CacheState]]] = {}
    for index, controller in enumerate(controllers):
        for block in controller.cache.resident_blocks():
            state = controller.cache.state_of(block)
            holders.setdefault(block, []).append((index, state))

    problems: List[str] = []
    for block, entries in holders.items():
        modified = [
            node
            for node, state in entries
            if state in (CacheState.MODIFIED, CacheState.EXCLUSIVE)
        ]
        shared = [
            node
            for node, state in entries
            if state in (CacheState.SHARED, CacheState.OWNED)
        ]
        owned = [node for node, state in entries if state is CacheState.OWNED]
        if len(modified) > 1:
            problems.append(f"block {block}: multiple writers {sorted(modified)}")
        if len(owned) > 1:
            problems.append(f"block {block}: multiple owned copies {sorted(owned)}")
        if modified and shared:
            problems.append(
                f"block {block}: writer {modified} coexists with sharers "
                f"{sorted(shared)}"
            )
    return problems


class StoreBuffer:
    """Per-core FIFO store buffer with same-address load forwarding (TSO).

    This is the *value-level* model of the buffer the TSO processor keeps:
    stores enter at the tail, drain to the memory system from the head in
    FIFO order, and a load first consults the buffer (newest matching entry
    wins) before going to the cache.  :class:`repro.processor.Processor`
    drives one of these per core; the hypothesis differential in
    ``tests/processor/test_consistency.py`` runs it against a flat-memory
    oracle to prove that an empty buffer makes TSO agree with SC exactly.
    """

    def __init__(self, capacity: int = STORE_BUFFER_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: Deque[Tuple[int, int]] = deque()

    def push(self, block: int, value: int) -> None:
        """Append a store at the tail; raises when the buffer is full."""
        if len(self._entries) >= self.capacity:
            raise OverflowError("store buffer full")
        self._entries.append((block, value))

    def forward(self, block: int) -> Optional[int]:
        """Value of the *youngest* buffered store to ``block`` (or None)."""
        for buffered_block, value in reversed(self._entries):
            if buffered_block == block:
                return value
        return None

    def head(self) -> Tuple[int, int]:
        """The oldest buffered store (the next one to drain)."""
        return self._entries[0]

    def pop(self) -> Tuple[int, int]:
        """Remove and return the head store once its drain completes."""
        return self._entries.popleft()

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)
