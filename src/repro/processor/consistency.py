"""Coherence / consistency checking.

The paper leans on formal work (Sorin et al.; Afek et al.) showing that
snooping correctness depends only on the order in which transactions are
processed.  Our simulator carries a per-block *version* token through every
data message; the checker uses those tokens to detect coherence violations
during test runs:

* **write serialisation** -- versions written to a block must be strictly
  increasing in completion order (two caches believing they both own a block
  produce duplicate or decreasing versions);
* **no stale reads going backward** -- a given processor must never observe
  a block's version moving backward;
* **no reads from the future** -- a read can only return a version some
  write has produced.

A separate helper, :func:`check_swmr_invariant`, inspects the stable cache
states directly and asserts the single-writer / multiple-reader property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.memory.coherence import CacheState


@dataclass
class Violation:
    """One detected coherence violation."""

    kind: str
    block: int
    node: int
    detail: str
    time: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"[{self.kind}] block {self.block} node {self.node} "
                f"at t={self.time}: {self.detail}")


class CoherenceChecker:
    """Collects read/write observations and flags violations."""

    def __init__(self) -> None:
        self.violations: List[Violation] = []
        self._latest_write: Dict[int, int] = {}
        self._writes_seen: Dict[int, List[Tuple[int, int, int]]] = {}
        self._last_read_version: Dict[Tuple[int, int], int] = {}
        self.writes_recorded = 0
        self.reads_recorded = 0

    # -------------------------------------------------------------- recording
    def record_write(self, node: int, block: int, version: int,
                     time: int) -> None:
        self.writes_recorded += 1
        previous = self._latest_write.get(block, 0)
        if version <= previous:
            self.violations.append(Violation(
                kind="write-serialisation", block=block, node=node, time=time,
                detail=(f"wrote version {version} but version {previous} "
                        f"was already written")))
        self._latest_write[block] = max(previous, version)
        self._writes_seen.setdefault(block, []).append((time, node, version))

    def record_read(self, node: int, block: int, version: int,
                    time: int) -> None:
        self.reads_recorded += 1
        latest = self._latest_write.get(block, 0)
        if version > latest:
            self.violations.append(Violation(
                kind="read-from-future", block=block, node=node, time=time,
                detail=f"read version {version}, newest write is {latest}"))
        key = (node, block)
        previous = self._last_read_version.get(key, 0)
        if version < previous:
            self.violations.append(Violation(
                kind="read-went-backward", block=block, node=node, time=time,
                detail=f"read version {version} after having read {previous}"))
        self._last_read_version[key] = max(previous, version)

    # -------------------------------------------------------------- reporting
    @property
    def clean(self) -> bool:
        return not self.violations

    def assert_clean(self) -> None:
        if self.violations:
            summary = "\n".join(str(v) for v in self.violations[:20])
            raise AssertionError(
                f"{len(self.violations)} coherence violations detected:\n{summary}")

    def writes_to(self, block: int) -> List[Tuple[int, int, int]]:
        return list(self._writes_seen.get(block, []))


def check_swmr_invariant(controllers: Iterable) -> List[str]:
    """Check the single-writer / multiple-reader invariant on stable states.

    ``controllers`` is any iterable of objects exposing a ``cache``
    (CacheArray) attribute.  Returns a list of human-readable violations
    (empty when the invariant holds).  Only *stable* states are examined, so
    this should be called when the system is quiescent (no in-flight
    transactions), as the integration tests do.
    """
    holders: Dict[int, List[Tuple[int, CacheState]]] = {}
    for index, controller in enumerate(controllers):
        for block in controller.cache.resident_blocks():
            state = controller.cache.state_of(block)
            holders.setdefault(block, []).append((index, state))

    problems: List[str] = []
    for block, entries in holders.items():
        modified = [node for node, state in entries
                    if state in (CacheState.MODIFIED, CacheState.EXCLUSIVE)]
        shared = [node for node, state in entries
                  if state in (CacheState.SHARED, CacheState.OWNED)]
        if len(modified) > 1:
            problems.append(
                f"block {block}: multiple writers {sorted(modified)}")
        if modified and shared:
            problems.append(
                f"block {block}: writer {modified} coexists with sharers "
                f"{sorted(shared)}")
    return problems
