"""The blocking processor model (Section 4.3, "Processor Model").

The paper approximates "a processor core and level one caches that execute 4
billion instructions per second and generate blocking requests to the level
two data cache".  We do exactly the same: each processor executes
instructions at a fixed rate between its level-two references and blocks on
every reference until the cache controller reports completion.

The issue loop reads references through a *puller* chosen once at
construction: packed streams yield plain ints straight from their columns,
eager ``Reference`` lists are indexed in place, and bare iterators keep
working for hand-fed tests.  No path materialises new per-reference objects.
"""
# repro-lint: hot

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro.memory.coherence import ACCESS_FROM_CODE, AccessType
from repro.protocols.base import CacheControllerBase
from repro.sim.component import Component
from repro.sim.kernel import Simulator
from repro.workloads.generator import Reference


@dataclass(frozen=True)
class ProcessorConfig:
    """Per-processor execution parameters.

    ``instructions_per_ns`` is 4 in the paper (e.g. a 1 GHz, IPC-4 core or a
    2 GHz, IPC-2 core with a perfect memory system above the L2).
    """

    instructions_per_ns: int = 4

    def __post_init__(self) -> None:
        if self.instructions_per_ns <= 0:
            raise ValueError("instructions_per_ns must be positive")

    def compute_time(self, instructions: int) -> int:
        """Nanoseconds needed to execute ``instructions`` between references."""
        if instructions < 0:
            raise ValueError("instructions must be non-negative")
        return (instructions + self.instructions_per_ns - 1) // self.instructions_per_ns


class Processor(Component):
    """An in-order core that blocks on every L2 reference."""

    def __init__(self, sim: Simulator, node: int,
                 controller: CacheControllerBase,
                 stream: Iterable[Reference],
                 config: Optional[ProcessorConfig] = None,
                 on_finish: Optional[Callable[["Processor"], None]] = None,
                 on_phase: Optional[Callable[["Processor"], None]] = None,
                 phase_boundary: Optional[int] = None) -> None:
        super().__init__(sim, f"cpu{node}")
        self.node = node
        self.controller = controller
        self.config = config or ProcessorConfig()
        self._pull = self._make_puller(stream)
        self._ipns = self.config.instructions_per_ns
        self._on_finish = on_finish
        self._on_phase = on_phase
        self._phase_boundary = phase_boundary
        self.instructions_executed = 0
        self.references_issued = 0
        self.finished = False
        self.finish_time: Optional[int] = None
        self._pending_block = 0
        self._pending_access: Optional[AccessType] = None
        self._started = False
        self._stalled_at_phase = False
        self._phase_passed = False
        # Pre-bound counter handles: the per-reference path must not pay
        # for a dict lookup per increment.
        self._ctr_references = self.stats.counter("references")
        self._ctr_writes = self.stats.counter("writes")
        self._ctr_reads = self.stats.counter("reads")

    @staticmethod
    def _make_puller(stream) -> Callable[[], Optional[tuple]]:
        """A zero-allocation-per-call reader over any supported stream shape.

        Returns ``(block, access_type, think_instructions)`` tuples and then
        ``None`` forever once the stream is exhausted.
        """
        columns = getattr(stream, "columns", None)
        if columns is not None:
            blocks, codes, think = columns()
            decode = ACCESS_FROM_CODE
            length = len(blocks)
            cursor = 0

            # repro-lint: disable=HOT001 -- one closure per processor at
            # construction; the per-call pull path allocates nothing.
            def pull_packed() -> Optional[tuple]:
                nonlocal cursor
                i = cursor
                if i >= length:
                    return None
                cursor = i + 1
                return blocks[i], decode[codes[i]], think[i]

            return pull_packed
        if isinstance(stream, Sequence):
            length = len(stream)
            cursor = 0

            # repro-lint: disable=HOT001 -- one closure per processor at
            # construction; the per-call pull path allocates nothing.
            def pull_sequence() -> Optional[tuple]:
                nonlocal cursor
                i = cursor
                if i >= length:
                    return None
                cursor = i + 1
                reference = stream[i]
                return (reference.block, reference.access_type,
                        reference.think_instructions)

            return pull_sequence
        iterator = iter(stream)

        # repro-lint: disable=HOT001 -- one closure per processor at
        # construction; the per-call pull path allocates nothing.
        def pull_iterator() -> Optional[tuple]:
            reference = next(iterator, None)
            if reference is None:
                return None
            return (reference.block, reference.access_type,
                    reference.think_instructions)

        return pull_iterator

    # ------------------------------------------------------------------ run
    def start(self) -> None:
        """Begin executing the reference stream."""
        if self._started:
            raise RuntimeError(f"{self.name} started twice")
        self._started = True
        self.schedule(0, self._next_reference, label="start")

    def resume(self) -> None:
        """Continue past a phase barrier (see ``phase_boundary``)."""
        if not self._stalled_at_phase:
            return
        self._stalled_at_phase = False
        self._phase_passed = True
        self.schedule(0, self._next_reference, label="resume")

    def _next_reference(self) -> None:
        # Guard order matters: after the warm-up barrier _phase_passed is
        # True, so the measured phase pays one boolean test per reference.
        if (not self._phase_passed
                and self._phase_boundary is not None
                and self.references_issued >= self._phase_boundary
                and not self._stalled_at_phase):
            # Warm-up complete: wait here until the harness resumes us so all
            # processors enter the measured phase together.
            self._stalled_at_phase = True
            if self._on_phase is not None:
                self._on_phase(self)
            return
        pulled = self._pull()
        if pulled is None:
            self._finish()
            return
        block, access_type, think = pulled
        self.instructions_executed += think
        ipns = self._ipns
        think_ns = (think + ipns - 1) // ipns
        # The blocking processor has at most one reference in flight, so the
        # pending reference rides on the instance instead of a per-reference
        # closure; the issue event is fire-and-forget, so it rides the
        # per-tick dispatch batches (one call layer and one kernel push+pop
        # per reference add up).
        self._pending_block = block
        self._pending_access = access_type
        self.sim.schedule_batched(think_ns, self._issue_pending)

    def _issue_pending(self) -> None:
        self._issue(self._pending_block, self._pending_access)

    def _issue(self, block: int, access_type: AccessType) -> None:
        self.references_issued += 1
        self._ctr_references.value += 1
        if access_type.needs_write_permission:
            self._ctr_writes.value += 1
        else:
            self._ctr_reads.value += 1
        self.controller.access(block, access_type, self._next_reference)

    def _finish(self) -> None:
        self.finished = True
        self.finish_time = self.now
        # repro-lint: disable=HOT003 -- runs exactly once per processor, at
        # stream end; not worth a pre-bound handle.
        self.stats.counter("finished").increment()
        if self._on_finish is not None:
            self._on_finish(self)

    # ------------------------------------------------------------ inspection
    @property
    def waiting_at_phase_barrier(self) -> bool:
        return self._stalled_at_phase
