"""The blocking processor model (Section 4.3, "Processor Model").

The paper approximates "a processor core and level one caches that execute 4
billion instructions per second and generate blocking requests to the level
two data cache".  We do exactly the same: each processor executes
instructions at a fixed rate between its level-two references and blocks on
every reference until the cache controller reports completion.

The issue loop reads references through a *puller* chosen once at
construction: packed streams yield plain ints straight from their columns,
eager ``Reference`` lists are indexed in place, and bare iterators keep
working for hand-fed tests.  No path materialises new per-reference objects.

``ProcessorConfig.consistency`` selects the memory model:

* ``"sc"`` (default) -- the blocking core above, bit-identical to the
  pre-matrix simulator;
* ``"tso"`` -- stores retire into a per-core FIFO
  :class:`~repro.processor.consistency.StoreBuffer` and drain to the cache
  in order after a rest delay, loads forward from the youngest buffered
  store to the same block (and otherwise still block), and atomics act as
  fences that wait for the buffer to drain.  This is the store->load
  reordering SPARC/x86 TSO permits.
"""
# repro-lint: hot

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro.memory.coherence import ACCESS_FROM_CODE, AccessType
from repro.processor.consistency import (
    CONSISTENCY_MODELS,
    STORE_BUFFER_CAPACITY,
    TSO_DRAIN_DELAY_NS,
    StoreBuffer,
)
from repro.protocols.base import CacheControllerBase
from repro.sim.component import Component
from repro.sim.kernel import Simulator
from repro.workloads.generator import Reference


@dataclass(frozen=True)
class ProcessorConfig:
    """Per-processor execution parameters.

    ``instructions_per_ns`` is 4 in the paper (e.g. a 1 GHz, IPC-4 core or a
    2 GHz, IPC-2 core with a perfect memory system above the L2).
    ``consistency`` is the memory model ("sc" or "tso", see the module
    docstring); SC remains the default.
    """

    instructions_per_ns: int = 4
    consistency: str = "sc"

    def __post_init__(self) -> None:
        if self.instructions_per_ns <= 0:
            raise ValueError("instructions_per_ns must be positive")
        if self.consistency not in CONSISTENCY_MODELS:
            raise ValueError(
                f"unknown consistency model {self.consistency!r}; "
                f"choose one of {CONSISTENCY_MODELS}"
            )

    def compute_time(self, instructions: int) -> int:
        """Nanoseconds needed to execute ``instructions`` between references."""
        if instructions < 0:
            raise ValueError("instructions must be non-negative")
        return (instructions + self.instructions_per_ns - 1) // self.instructions_per_ns


class Processor(Component):
    """An in-order core that blocks on every L2 reference."""

    def __init__(
        self,
        sim: Simulator,
        node: int,
        controller: CacheControllerBase,
        stream: Iterable[Reference],
        config: Optional[ProcessorConfig] = None,
        on_finish: Optional[Callable[["Processor"], None]] = None,
        on_phase: Optional[Callable[["Processor"], None]] = None,
        phase_boundary: Optional[int] = None,
    ) -> None:
        super().__init__(sim, f"cpu{node}")
        self.node = node
        self.controller = controller
        self.config = config or ProcessorConfig()
        self._pull = self._make_puller(stream)
        self._ipns = self.config.instructions_per_ns
        self._on_finish = on_finish
        self._on_phase = on_phase
        self._phase_boundary = phase_boundary
        self.instructions_executed = 0
        self.references_issued = 0
        self.finished = False
        self.finish_time: Optional[int] = None
        self._pending_block = 0
        self._pending_access: Optional[AccessType] = None
        self._started = False
        self._stalled_at_phase = False
        self._phase_passed = False
        # Pre-bound counter handles: the per-reference path must not pay
        # for a dict lookup per increment.
        self._ctr_references = self.stats.counter("references")
        self._ctr_writes = self.stats.counter("writes")
        self._ctr_reads = self.stats.counter("reads")
        # The consistency model is chosen once here; the SC issue loop is
        # untouched (and bit-identical to the pre-TSO simulator) because the
        # model only swaps which advance callback drives the core.
        if self.config.consistency == "tso":
            self._advance: Callable[[], None] = self._next_reference_tso
            self.store_buffer: Optional[StoreBuffer] = StoreBuffer(
                STORE_BUFFER_CAPACITY
            )
            self._drain_delay = TSO_DRAIN_DELAY_NS
            self._draining = False
            self._retry_pending = False
            self._finish_after_drain = False
            self._ctr_sb_forwards = self.stats.counter("store_buffer_forwards")
            self._ctr_sb_stalls = self.stats.counter("store_buffer_stalls")
        else:
            self._advance = self._next_reference
            self.store_buffer = None

    @staticmethod
    def _make_puller(stream) -> Callable[[], Optional[tuple]]:
        """A zero-allocation-per-call reader over any supported stream shape.

        Returns ``(block, access_type, think_instructions)`` tuples and then
        ``None`` forever once the stream is exhausted.
        """
        columns = getattr(stream, "columns", None)
        if columns is not None:
            blocks, codes, think = columns()
            decode = ACCESS_FROM_CODE
            length = len(blocks)
            cursor = 0

            # repro-lint: disable=HOT001 -- one closure per processor at
            # construction; the per-call pull path allocates nothing.
            def pull_packed() -> Optional[tuple]:
                nonlocal cursor
                i = cursor
                if i >= length:
                    return None
                cursor = i + 1
                return blocks[i], decode[codes[i]], think[i]

            return pull_packed
        if isinstance(stream, Sequence):
            length = len(stream)
            cursor = 0

            # repro-lint: disable=HOT001 -- one closure per processor at
            # construction; the per-call pull path allocates nothing.
            def pull_sequence() -> Optional[tuple]:
                nonlocal cursor
                i = cursor
                if i >= length:
                    return None
                cursor = i + 1
                reference = stream[i]
                return (
                    reference.block,
                    reference.access_type,
                    reference.think_instructions,
                )

            return pull_sequence
        iterator = iter(stream)

        # repro-lint: disable=HOT001 -- one closure per processor at
        # construction; the per-call pull path allocates nothing.
        def pull_iterator() -> Optional[tuple]:
            reference = next(iterator, None)
            if reference is None:
                return None
            return (
                reference.block,
                reference.access_type,
                reference.think_instructions,
            )

        return pull_iterator

    # ------------------------------------------------------------------ run
    def start(self) -> None:
        """Begin executing the reference stream."""
        if self._started:
            raise RuntimeError(f"{self.name} started twice")
        self._started = True
        self.schedule(0, self._advance, label="start")

    def resume(self) -> None:
        """Continue past a phase barrier (see ``phase_boundary``)."""
        if not self._stalled_at_phase:
            return
        self._stalled_at_phase = False
        self._phase_passed = True
        self.schedule(0, self._advance, label="resume")

    def _next_reference(self) -> None:
        # Guard order matters: after the warm-up barrier _phase_passed is
        # True, so the measured phase pays one boolean test per reference.
        if (
            not self._phase_passed
            and self._phase_boundary is not None
            and self.references_issued >= self._phase_boundary
            and not self._stalled_at_phase
        ):
            # Warm-up complete: wait here until the harness resumes us so all
            # processors enter the measured phase together.
            self._stalled_at_phase = True
            if self._on_phase is not None:
                self._on_phase(self)
            return
        pulled = self._pull()
        if pulled is None:
            self._finish()
            return
        block, access_type, think = pulled
        self.instructions_executed += think
        ipns = self._ipns
        think_ns = (think + ipns - 1) // ipns
        # The blocking processor has at most one reference in flight, so the
        # pending reference rides on the instance instead of a per-reference
        # closure; the issue event is fire-and-forget, so it rides the
        # per-tick dispatch batches (one call layer and one kernel push+pop
        # per reference add up).
        self._pending_block = block
        self._pending_access = access_type
        self.sim.schedule_batched(think_ns, self._issue_pending)

    def _issue_pending(self) -> None:
        self._issue(self._pending_block, self._pending_access)

    def _issue(self, block: int, access_type: AccessType) -> None:
        self.references_issued += 1
        self._ctr_references.value += 1
        if access_type.needs_write_permission:
            self._ctr_writes.value += 1
        else:
            self._ctr_reads.value += 1
        self.controller.access(block, access_type, self._next_reference)

    # ------------------------------------------------------------------ tso
    def _next_reference_tso(self) -> None:
        if (
            not self._phase_passed
            and self._phase_boundary is not None
            and self.references_issued >= self._phase_boundary
            and not self._stalled_at_phase
        ):
            self._stalled_at_phase = True
            if self._on_phase is not None:
                self._on_phase(self)
            return
        pulled = self._pull()
        if pulled is None:
            if self.store_buffer or self._draining:
                # Drain every buffered store before declaring the core done
                # so quiescence (and the invariant checkers) see no
                # in-flight work.
                self._finish_after_drain = True
            else:
                self._finish()
            return
        block, access_type, think = pulled
        self.instructions_executed += think
        ipns = self._ipns
        think_ns = (think + ipns - 1) // ipns
        self._pending_block = block
        self._pending_access = access_type
        self.sim.schedule_batched(think_ns, self._issue_pending_tso)

    def _count_issue_tso(self, access_type: AccessType) -> None:
        self.references_issued += 1
        self._ctr_references.value += 1
        if access_type.needs_write_permission:
            self._ctr_writes.value += 1
        else:
            self._ctr_reads.value += 1

    def _issue_pending_tso(self) -> None:
        block = self._pending_block
        access_type = self._pending_access
        buffer = self.store_buffer
        if access_type is AccessType.STORE:
            if buffer.full:
                # Wait for the head drain to complete, then retry this store.
                self._ctr_sb_stalls.value += 1
                self._retry_pending = True
                return
            self._count_issue_tso(access_type)
            buffer.push(block, self.now + self._drain_delay)
            if not self._draining:
                self._start_drain()
            # The store retires into the buffer and the core moves straight
            # on: this is the store->load reordering TSO permits.
            self._next_reference_tso()
        elif access_type is AccessType.ATOMIC:
            if buffer or self._draining:
                # Atomics are fences: the buffer must drain completely
                # before the read-modify-write issues (and blocks).
                self._retry_pending = True
                return
            self._count_issue_tso(access_type)
            self.controller.access(block, access_type, self._advance)
        else:
            if buffer.forward(block) is not None:
                # Same-address forwarding: the youngest buffered store
                # satisfies the load without touching the coherence fabric.
                self._count_issue_tso(access_type)
                self._ctr_sb_forwards.value += 1
                self.sim.schedule_batched(
                    self.controller.timing.l2_hit_ns, self._advance
                )
            else:
                self._count_issue_tso(access_type)
                self.controller.access(block, access_type, self._advance)

    def _start_drain(self) -> None:
        self._draining = True
        _block, ready = self.store_buffer.head()
        self.sim.schedule_batched(max(0, ready - self.now), self._drain_head)

    def _drain_head(self) -> None:
        block, _ready = self.store_buffer.head()
        # The head entry stays in the buffer until the store completes, so
        # loads to it keep forwarding and a same-block demand access can
        # never collide with the drain in the controller's MSHRs.
        self.controller.access(block, AccessType.STORE, self._drain_done)

    def _drain_done(self) -> None:
        self.store_buffer.pop()
        if self.store_buffer:
            self._start_drain()
        else:
            self._draining = False
        if self._retry_pending:
            self._retry_pending = False
            self._issue_pending_tso()
        elif (
            self._finish_after_drain
            and not self._draining
            and not self.store_buffer
        ):
            self._finish_after_drain = False
            self._finish()

    def _finish(self) -> None:
        self.finished = True
        self.finish_time = self.now
        # repro-lint: disable=HOT003 -- runs exactly once per processor, at
        # stream end; not worth a pre-bound handle.
        self.stats.counter("finished").increment()
        if self._on_finish is not None:
            self._on_finish(self)

    # ------------------------------------------------------------ inspection
    @property
    def waiting_at_phase_barrier(self) -> bool:
        return self._stalled_at_phase
