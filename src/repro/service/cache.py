"""Content-addressed result cache: canonical keys, wire format, stores.

The cache key of one replica is the SHA-256 of the canonical JSON form of
``(effective SystemConfig, scaled WorkloadProfile, replica_index,
result-schema version)`` -- see :func:`repro.api.spec.canonical_experiment`
for what "canonical" means (override order, alias spelling, restated
defaults and result-neutral host knobs all hash identically; the seed and
replica count live inside the config and are part of the key).

Cached values are the schema-versioned JSON encoding of a
:class:`~repro.system.results.RunResult`.  Decoding always builds a *fresh*
``RunResult`` -- both so a disk entry and a memory entry replay identically
and so callers that mutate merged results (the minimum-replica selection
writes ``result.replicas``) can never corrupt the stored copy.  Round
trips are bit-identical: every field of ``RunResult`` is JSON-exact (ints,
strings and IEEE doubles), which the test suite verifies against fresh
computation for all three protocols.

:class:`ResultCache` layers an in-memory LRU over an optional on-disk
store (``<dir>/<key[:2]>/<key>.json``, written atomically via rename), so
a long-running service keeps its hot set in memory while surviving
restarts, and concurrent services can share one directory.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

from repro.api.spec import canonical_experiment
from repro.parallel.executor import run_replica_jobs
from repro.parallel.jobs import ReplicaJob
from repro.parallel.sweep import MatrixEntry, select_minimum_replica
from repro.service.faults import (
    KIND_CORRUPT,
    SITE_CACHE_DISK_GET,
    SITE_CACHE_DISK_PUT,
    FaultPlan,
    fault_exception,
)
from repro.system.config import SystemConfig
from repro.system.results import RunResult
from repro.workloads.profiles import WorkloadProfile

#: Version of the cached-result wire format.  Part of every cache key, so
#: a schema change can never replay stale entries.
RESULT_SCHEMA_VERSION = 1

#: ``kind`` discriminator of cache-entry JSON documents.
RESULT_KIND = "repro.service.result"


class CacheError(ValueError):
    """A cache entry does not match the expected schema or key."""


# ------------------------------------------------------------------- keys
def canonical_key_document(
    config: SystemConfig, profile: WorkloadProfile, replica_index: int
) -> Dict[str, Any]:
    """The exact document hashed into a replica's cache key."""
    document = canonical_experiment(config, profile)
    document["replica_index"] = replica_index
    document["result_schema"] = RESULT_SCHEMA_VERSION
    return document


def replica_key(
    config: SystemConfig, profile: WorkloadProfile, replica_index: int
) -> str:
    """Content address of one ``(config, profile, replica)`` result."""
    if not 0 <= replica_index < config.perturbation_replicas:
        raise ValueError(
            f"replica_index {replica_index} out of range for "
            f"{config.perturbation_replicas} replicas"
        )
    document = canonical_key_document(config, profile, replica_index)
    blob = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def entry_keys(config: SystemConfig, profile: WorkloadProfile) -> List[str]:
    """Cache keys of every replica of one experiment entry, in order."""
    return [
        replica_key(config, profile, index)
        for index in range(config.perturbation_replicas)
    ]


# ------------------------------------------------------------ wire format
def result_to_payload(result: RunResult) -> Dict[str, Any]:
    """``RunResult`` as a plain JSON-safe dictionary (all fields)."""
    payload: Dict[str, Any] = {}
    for field in fields(result):
        value = getattr(result, field.name)
        payload[field.name] = dict(value) if isinstance(value, dict) else value
    return payload


def payload_to_result(payload: Dict[str, Any]) -> RunResult:
    """Rebuild a fresh ``RunResult`` from :func:`result_to_payload` output."""
    names = {field.name for field in fields(RunResult)}
    unknown = set(payload) - names
    if unknown:
        raise CacheError(f"result payload has unknown fields {sorted(unknown)}")
    return RunResult(**payload)


def encode_entry(key: str, result: RunResult) -> Dict[str, Any]:
    """The JSON document stored for one cached replica result."""
    return {
        "schema_version": RESULT_SCHEMA_VERSION,
        "kind": RESULT_KIND,
        "key": key,
        "result": result_to_payload(result),
    }


def decode_entry(document: Any, expected_key: Optional[str] = None) -> RunResult:
    """Validate and decode one cache-entry document into a fresh result."""
    if not isinstance(document, dict):
        raise CacheError(
            f"cache entry must be an object, got {type(document).__name__}"
        )
    if document.get("kind") != RESULT_KIND:
        raise CacheError(f"cache entry has kind {document.get('kind')!r}")
    if document.get("schema_version") != RESULT_SCHEMA_VERSION:
        raise CacheError(
            f"unsupported cache schema_version {document.get('schema_version')!r}"
        )
    if expected_key is not None and document.get("key") != expected_key:
        raise CacheError(
            f"cache entry key {document.get('key')!r} does not match the "
            f"requested key {expected_key!r}"
        )
    return payload_to_result(document["result"])


# ------------------------------------------------------------------ store
@dataclass
class CacheStats:
    """Hit/miss accounting, merged into the service metrics snapshot."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    memory_evictions: int = 0
    disk_evictions: int = 0
    invalid_entries: int = 0
    disk_put_errors: int = 0
    disk_get_errors: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {field.name: getattr(self, field.name) for field in fields(self)}


class ResultCache:
    """In-memory LRU over an optional on-disk content-addressed store.

    ``memory_entries`` bounds the LRU (oldest entries fall back to disk, or
    are dropped entirely for a memory-only cache).  ``path=None`` keeps the
    cache purely in memory.  All operations are thread-safe; entries are
    immutable JSON documents, so cross-process sharing of one directory is
    safe too (writes are atomic renames).

    ``disk_budget_bytes`` bounds the on-disk store: the existing shards
    are indexed at open (least-recently-modified first), every get/put
    refreshes an entry's recency, and once the store would exceed the
    budget the least-recently-used shards are unlinked
    (``disk_evictions`` in the statistics; ``disk_bytes`` /
    ``disk_entries`` gauges report the live footprint).  The entry being
    written is never the eviction victim, so a budget smaller than one
    entry degenerates to "keep only the newest".  Evicted entries are
    simply misses later -- recomputation is always correct.

    **Degraded mode**: a disk fault (ENOSPC/EACCES on read or write, or a
    shard that no longer decodes) never propagates to callers.  The fault
    is counted (``disk_put_errors`` / ``disk_get_errors``), the cache flips
    to memory-only operation (:attr:`degraded` with
    :attr:`degraded_reason`), and service continues -- the job manager
    surfaces the transition as a ``ServiceDegraded`` event and a ``health``
    block in the metrics snapshot.  ``fault_plan`` injects planned disk
    faults at the ``cache.disk_put`` / ``cache.disk_get`` sites for tests.
    """

    def __init__(
        self,
        path: Union[str, Path, None] = None,
        memory_entries: int = 512,
        *,
        disk_budget_bytes: Optional[int] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if memory_entries < 0:
            raise ValueError("memory_entries must be non-negative")
        if disk_budget_bytes is not None and disk_budget_bytes < 1:
            raise ValueError("disk_budget_bytes must be positive (or None)")
        self.path = Path(path) if path is not None else None
        self.memory_entries = memory_entries
        self.disk_budget_bytes = disk_budget_bytes
        self.stats = CacheStats()
        self.fault_plan = fault_plan
        self.degraded = False
        self.degraded_reason = ""
        self._memory: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        #: key -> shard size in bytes, least-recently-used first.
        self._disk_index: "OrderedDict[str, int]" = OrderedDict()
        self._disk_bytes = 0
        self._lock = threading.Lock()
        if self.path is not None:
            self.path.mkdir(parents=True, exist_ok=True)
            if self.disk_budget_bytes is not None:
                self._scan_disk()
                self._evict_disk()

    # ------------------------------------------------------------- lookup
    def get(self, key: str) -> Optional[RunResult]:
        """The cached result for ``key``, or ``None``.

        Always decodes a fresh ``RunResult``; mutating the returned object
        never affects the stored entry.
        """
        with self._lock:
            document = self._memory.get(key)
            if document is not None:
                self._memory.move_to_end(key)
                self.stats.hits += 1
                self.stats.memory_hits += 1
                if key in self._disk_index:
                    self._disk_index.move_to_end(key)
        if document is not None:
            # A memory hit is still a *use* of the disk shard: refresh its
            # recency too, or the disk LRU would evict exactly the entries
            # hot enough to live in memory (and a restart, which rebuilds
            # order from shard mtimes, would see them as cold).
            self._touch_disk(key)
            return decode_entry(document, expected_key=key)
        document = self._read_disk(key)
        if document is None:
            with self._lock:
                self.stats.misses += 1
            return None
        try:
            result = decode_entry(document, expected_key=key)
        except CacheError as error:
            with self._lock:
                self.stats.invalid_entries += 1
                self.stats.misses += 1
            self._degrade(f"corrupt cache shard {key[:12]}...: {error}")
            return None
        with self._lock:
            self.stats.hits += 1
            self.stats.disk_hits += 1
            self._remember(key, document)
        return result

    def put(self, key: str, result: RunResult) -> None:
        """Store ``result`` under ``key`` (memory LRU + disk when configured).

        The entry is serialised immediately, so later mutation of
        ``result`` (e.g. the merge step writing ``replicas``) cannot leak
        into the cache.
        """
        document = encode_entry(key, result)
        with self._lock:
            self._remember(key, document)
            self.stats.stores += 1
        self._write_disk(key, document)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._memory:
                return True
        if self.path is None or self.degraded:
            return False
        # The probe is a disk access like any other: it goes through the
        # ``cache.disk_get`` fault site and the degraded-mode accounting,
        # so an unreadable store cannot keep answering "present" to
        # membership checks while every actual read fails.
        try:
            self._fire(SITE_CACHE_DISK_GET)
            return self._disk_path(key).is_file()
        except (CacheError, OSError) as error:
            with self._lock:
                self.stats.disk_get_errors += 1
            self._degrade(f"disk probe of {key[:12]}... failed: {error}")
            return False

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def clear_memory(self) -> None:
        """Drop the in-memory LRU (disk entries survive)."""
        with self._lock:
            self._memory.clear()

    def stats_dict(self) -> Dict[str, int]:
        with self._lock:
            out = self.stats.as_dict()
            out["disk_bytes"] = self._disk_bytes
            out["disk_entries"] = len(self._disk_index)
            return out

    # ------------------------------------------------------------ internals
    def _remember(self, key: str, document: Dict[str, Any]) -> None:
        if self.memory_entries == 0:
            return
        self._memory[key] = document
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)
            self.stats.memory_evictions += 1

    def _disk_path(self, key: str) -> Path:
        assert self.path is not None
        return self.path / key[:2] / f"{key}.json"

    def _scan_disk(self) -> None:
        """Index pre-existing shards, least-recently-modified first."""
        assert self.path is not None
        found = []
        for shard in self.path.glob("??/*.json"):
            try:
                stat = shard.stat()
            except OSError:
                continue
            found.append((stat.st_mtime_ns, shard.stem, stat.st_size))
        found.sort()
        with self._lock:
            for _mtime, key, size in found:
                self._disk_index[key] = size
                self._disk_bytes += size

    def _note_disk_entry(self, key: str, size: int) -> None:
        """Record one live shard as most-recently-used (lock held)."""
        self._disk_bytes += size - self._disk_index.get(key, 0)
        self._disk_index[key] = size
        self._disk_index.move_to_end(key)

    def _evict_disk(self, protect: Optional[str] = None) -> None:
        """Unlink least-recently-used shards until the budget holds.

        ``protect`` (the key just written) is never the victim.  Only
        meaningful with a ``disk_budget_bytes``; a no-op otherwise.
        """
        if self.disk_budget_bytes is None or self.path is None:
            return
        while True:
            with self._lock:
                if self._disk_bytes <= self.disk_budget_bytes:
                    return
                victim = next(
                    (key for key in self._disk_index if key != protect), None
                )
                if victim is None:
                    return
                self._disk_bytes -= self._disk_index.pop(victim)
                self.stats.disk_evictions += 1
            try:
                self._disk_path(victim).unlink()
            except OSError:
                pass  # already gone (or shared dir): the index is advisory

    def _touch_disk(self, key: str) -> None:
        """Best-effort mtime refresh of ``key``'s shard (hit bookkeeping)."""
        if self.path is None or self.degraded:
            return
        try:
            os.utime(self._disk_path(key))
        except OSError:
            pass  # shard evicted meanwhile (or shared dir): best effort

    def _degrade(self, reason: str) -> None:
        """Flip to memory-only operation after a disk fault (latching)."""
        if not self.degraded:
            self.degraded = True
            self.degraded_reason = reason

    def _fire(self, site: str) -> None:
        """Raise/mangle per the fault plan at one instrumented disk site."""
        if self.fault_plan is None:
            return
        fault = self.fault_plan.fire(site)
        if fault is None:
            return
        if fault.kind == KIND_CORRUPT:
            raise CacheError(
                f"injected corrupt shard (site {site}, invocation {fault.at})"
            )
        raise fault_exception(fault)

    def _read_disk(self, key: str) -> Optional[Dict[str, Any]]:
        if self.path is None or self.degraded:
            return None
        target = self._disk_path(key)
        try:
            self._fire(SITE_CACHE_DISK_GET)
            with open(target, "r", encoding="utf-8") as handle:
                document = json.load(handle)
            with self._lock:
                if key in self._disk_index:
                    self._disk_index.move_to_end(key)
            # Persist the read recency: a reopened cache rebuilds its LRU
            # order from shard mtimes (``_scan_disk``), so without the
            # touch every restart would evict by *write* age and throw
            # away the most-read entries first.
            try:
                os.utime(target)
            except OSError:
                pass  # concurrent eviction or read-only share: best effort
            return document
        except FileNotFoundError:
            return None
        except CacheError as error:
            with self._lock:
                self.stats.invalid_entries += 1
                self.stats.disk_get_errors += 1
            self._degrade(f"disk read of {key[:12]}...: {error}")
            return None
        except (OSError, json.JSONDecodeError) as error:
            with self._lock:
                self.stats.invalid_entries += 1
                self.stats.disk_get_errors += 1
            self._degrade(f"disk read of {key[:12]}... failed: {error}")
            return None

    def _write_disk(self, key: str, document: Dict[str, Any]) -> None:
        if self.path is None or self.degraded:
            return
        target = self._disk_path(key)
        scratch: Optional[Path] = None
        try:
            self._fire(SITE_CACHE_DISK_PUT)
            target.parent.mkdir(parents=True, exist_ok=True)
            scratch = target.parent / f"{target.name}.tmp{os.getpid()}"
            with open(scratch, "w", encoding="utf-8") as handle:
                json.dump(
                    document, handle, sort_keys=True, separators=(",", ":")
                )
            os.replace(scratch, target)
            if self.disk_budget_bytes is not None:
                with self._lock:
                    self._note_disk_entry(key, target.stat().st_size)
                self._evict_disk(protect=key)
        except (OSError, CacheError) as error:
            with self._lock:
                self.stats.disk_put_errors += 1
            self._degrade(f"disk write of {key[:12]}... failed: {error}")
            if scratch is not None:
                try:
                    scratch.unlink()
                except OSError:
                    pass


# ------------------------------------------------------- cached execution
def run_matrix_cached(
    entries: Sequence[MatrixEntry],
    *,
    cache: ResultCache,
    jobs: Optional[int] = 1,
) -> List[RunResult]:
    """:func:`repro.parallel.sweep.run_matrix`, deduplicated through ``cache``.

    Replicas whose key is already cached are replayed (bit-identical to
    recomputation); only the uncached frontier is submitted to the process
    pool, in the same submission order ``run_matrix`` would use, and every
    fresh result is stored before the per-entry minimum-replica merge.
    The returned list is bit-identical to an uncached ``run_matrix`` call.
    """
    slots: List[List[List[Any]]] = []
    misses: List[ReplicaJob] = []
    for config, profile in entries:
        per_entry: List[List[Any]] = []
        for index in range(config.perturbation_replicas):
            key = replica_key(config, profile, index)
            per_entry.append([key, cache.get(key)])
            if per_entry[-1][1] is None:
                misses.append(
                    ReplicaJob(config=config, profile=profile, replica_index=index)
                )
        slots.append(per_entry)

    fresh: Iterator[RunResult] = iter(
        run_replica_jobs(misses, jobs=jobs) if misses else ()
    )
    merged: List[RunResult] = []
    for per_entry in slots:
        for slot in per_entry:
            if slot[1] is None:
                slot[1] = next(fresh)
                cache.put(slot[0], slot[1])
        merged.append(select_minimum_replica([slot[1] for slot in per_entry]))
    return merged
