"""HTTP/WebSocket gateway in front of :class:`~repro.service.manager.JobManager`.

Stdlib-only (``asyncio`` streams, no web framework), speaking the typed
wire vocabulary of :mod:`repro.service.wire`:

===========  =========================  =========================================
Method       Path                       Meaning
===========  =========================  =========================================
``POST``     ``/v1/jobs``               submit a :class:`~repro.service.wire.SubmitRequest`;
                                        ``202`` + ``SubmitAccepted``, or ``429`` +
                                        ``SubmitRejected`` with a ``Retry-After`` header
``GET``      ``/v1/jobs/{id}``          ``JobStatus`` (state, progress, merged result)
``DELETE``   ``/v1/jobs/{id}``          cancel; ``CancelResponse``
``GET``      ``/v1/jobs/{id}/events``   the job's event stream -- NDJSON by default,
                                        RFC 6455 WebSocket text frames when the
                                        request carries ``Upgrade: websocket``
``GET``      ``/v1/health``             the manager's degradation report
``GET``      ``/v1/metrics``            the schema-v3 metrics snapshot
===========  =========================  =========================================

Event streams are **replayable**: the gateway pumps each job's
single-consumer :meth:`~repro.service.manager.JobHandle.events` iterator
into a per-job record the moment the job is submitted, so any number of
stream requests -- connecting at any time, even after the job finished --
see the identical full sequence from ``JobAdmitted`` (or the lone
``JobCancelled`` of a cancel-before-admit race) through the terminal
event.

:class:`ServerThread` hosts a manager plus gateway on a dedicated thread
with its own event loop, which is what lets the *blocking* urllib-based
:class:`repro.client.ServiceClient` drive a gateway from synchronous code
(tests, the ``--self-test`` loopback pass).
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import math
import struct
import threading
from typing import Any, AsyncIterator, Awaitable, Callable, Dict, List, Optional, Tuple

from repro.service.events import JobEvent
from repro.service.manager import (
    AdmissionError,
    JobHandle,
    JobManager,
    JobState,
)
from repro.service.wire import (
    CancelResponse,
    JobStatus,
    SubmitAccepted,
    SubmitRejected,
    SubmitRequest,
    WireError,
    error_to_wire,
    event_to_wire,
)

#: RFC 6455 magic GUID appended to ``Sec-WebSocket-Key`` in the handshake.
_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

#: Largest request body the gateway will read (a spec document is tiny).
MAX_BODY_BYTES = 1 << 20

_JSON_HEADERS = (("Content-Type", "application/json"),)

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class _JobRecord:
    """One job's replayable event history plus its pump task."""

    def __init__(self, handle: JobHandle) -> None:
        self.handle = handle
        self.events: List[JobEvent] = []
        self.changed = asyncio.Condition()
        self.pump: Optional["asyncio.Task[None]"] = None

    async def run_pump(self) -> None:
        """Copy the handle's single-consumer stream into the record."""
        async for event in self.handle.events():
            async with self.changed:
                self.events.append(event)
                self.changed.notify_all()

    @property
    def done(self) -> bool:
        return bool(self.events) and self.events[-1].terminal

    async def stream(self) -> AsyncIterator[JobEvent]:
        """Replay the history, then follow live until the terminal event."""
        index = 0
        while True:
            async with self.changed:
                while index >= len(self.events):
                    await self.changed.wait()
                batch = self.events[index:]
                index = len(self.events)
            for event in batch:
                yield event
                if event.terminal:
                    return


class GatewayServer:
    """The asyncio HTTP/WebSocket front-end of one job manager.

    The manager must already be started (workers running) and stays owned
    by the caller; the gateway only owns its listening socket and the
    per-job pump tasks.
    """

    def __init__(
        self,
        manager: JobManager,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.manager = manager
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._records: Dict[str, _JobRecord] = {}

    # ------------------------------------------------------------ lifecycle
    async def start(self) -> None:
        """Bind and start serving; ``self.port`` holds the bound port."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def aclose(self) -> None:
        """Stop accepting connections and cancel the event pumps."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for record in self._records.values():
            if record.pump is not None and not record.pump.done():
                record.pump.cancel()
        pumps = [r.pump for r in self._records.values() if r.pump is not None]
        if pumps:
            await asyncio.gather(*pumps, return_exceptions=True)

    async def __aenter__(self) -> "GatewayServer":
        await self.start()
        return self

    async def __aexit__(self, *_exc_info: Any) -> None:
        await self.aclose()

    # ------------------------------------------------------------- plumbing
    def track(self, handle: JobHandle) -> _JobRecord:
        """Start pumping ``handle``'s events into a replayable record."""
        record = self._records.get(handle.job_id)
        if record is None:
            record = _JobRecord(handle)
            record.pump = asyncio.create_task(record.run_pump())
            self._records[handle.job_id] = record
        return record

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await _read_request(reader)
            if request is None:
                return
            method, path, headers, body = request
            await self._dispatch(method, path, headers, body, writer)
        except ConnectionError:
            pass
        except Exception as error:  # defensive: one bad request, one 500
            try:
                _write_response(
                    writer, 500, error_to_wire(500, f"internal error: {error!r}")
                )
            except Exception:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _dispatch(
        self,
        method: str,
        path: str,
        headers: Dict[str, str],
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        if path == "/v1/jobs":
            if method != "POST":
                _write_response(
                    writer, 405, error_to_wire(405, f"{method} not allowed here")
                )
                return
            await self._submit(body, writer)
            return
        if path == "/v1/health" and method == "GET":
            _write_response(writer, 200, self.manager.health())
            return
        if path == "/v1/metrics" and method == "GET":
            _write_response(writer, 200, self.manager.snapshot())
            return
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/") :]
            if rest.endswith("/events"):
                job_id = rest[: -len("/events")]
                if method != "GET":
                    _write_response(
                        writer, 405, error_to_wire(405, "events are GET-only")
                    )
                    return
                await self._events(job_id, headers, writer)
                return
            job_id = rest
            handle = self.manager.get_job(job_id)
            if handle is None:
                _write_response(
                    writer, 404, error_to_wire(404, f"no such job {job_id!r}")
                )
                return
            if method == "GET":
                _write_response(writer, 200, (await _status_of(handle)).to_wire())
                return
            if method == "DELETE":
                cancelled = handle.cancel()
                _write_response(
                    writer,
                    200,
                    CancelResponse(
                        job_id=handle.job_id,
                        cancelled=cancelled,
                        state=handle.state.value,
                    ).to_wire(),
                )
                return
            _write_response(
                writer, 405, error_to_wire(405, f"{method} not allowed here")
            )
            return
        _write_response(writer, 404, error_to_wire(404, f"no route for {path!r}"))

    # --------------------------------------------------------------- routes
    async def _submit(self, body: bytes, writer: asyncio.StreamWriter) -> None:
        try:
            document = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            _write_response(
                writer, 400, error_to_wire(400, f"request body is not JSON: {error}")
            )
            return
        try:
            request = SubmitRequest.from_wire(document)
        except WireError as error:
            _write_response(writer, 400, error_to_wire(400, str(error)))
            return
        try:
            handle = await self.manager.submit_async(
                request.spec,
                priority=request.priority,
                client_id=request.client_id,
            )
        except AdmissionError as error:
            rejection = SubmitRejected(
                pending_cost=error.pending_cost,
                budget=error.budget,
                retry_after_s=error.retry_after_s,
            )
            _write_response(
                writer,
                429,
                rejection.to_wire(),
                extra_headers=(
                    ("Retry-After", str(max(1, math.ceil(error.retry_after_s)))),
                ),
            )
            return
        self.track(handle)
        accepted = SubmitAccepted(
            job_id=handle.job_id,
            label=handle.spec.label,
            total_replicas=handle.total_replicas,
            priority=handle.priority,
            client_id=handle.client_id,
        )
        _write_response(writer, 202, accepted.to_wire())

    async def _events(
        self, job_id: str, headers: Dict[str, str], writer: asyncio.StreamWriter
    ) -> None:
        handle = self.manager.get_job(job_id)
        if handle is None:
            _write_response(
                writer, 404, error_to_wire(404, f"no such job {job_id!r}")
            )
            return
        record = self.track(handle)
        if headers.get("upgrade", "").lower() == "websocket":
            await self._events_websocket(record, headers, writer)
        else:
            await self._events_ndjson(record, writer)

    async def _events_ndjson(
        self, record: _JobRecord, writer: asyncio.StreamWriter
    ) -> None:
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n"
        )
        async for event in record.stream():
            line = json.dumps(event_to_wire(event), sort_keys=True)
            writer.write(line.encode("utf-8") + b"\n")
            await writer.drain()

    async def _events_websocket(
        self,
        record: _JobRecord,
        headers: Dict[str, str],
        writer: asyncio.StreamWriter,
    ) -> None:
        key = headers.get("sec-websocket-key")
        if not key:
            _write_response(
                writer,
                400,
                error_to_wire(400, "websocket upgrade without Sec-WebSocket-Key"),
            )
            return
        accept = base64.b64encode(
            hashlib.sha1((key + _WS_GUID).encode("ascii")).digest()
        ).decode("ascii")
        writer.write(
            (
                "HTTP/1.1 101 Switching Protocols\r\n"
                "Upgrade: websocket\r\n"
                "Connection: Upgrade\r\n"
                f"Sec-WebSocket-Accept: {accept}\r\n\r\n"
            ).encode("ascii")
        )
        await writer.drain()
        async for event in record.stream():
            payload = json.dumps(event_to_wire(event), sort_keys=True)
            writer.write(_ws_frame(0x1, payload.encode("utf-8")))
            await writer.drain()
        writer.write(_ws_frame(0x8, struct.pack("!H", 1000)))
        await writer.drain()


# ---------------------------------------------------------- HTTP plumbing
async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """Parse one HTTP/1.1 request: ``(method, path, headers, body)``."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.IncompleteReadError):
        return None
    if not request_line.strip():
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) < 2:
        return None
    method, target = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if not line or line in (b"\r\n", b"\n"):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise ValueError(f"request body of {length} bytes exceeds the limit")
    body = await reader.readexactly(length) if length else b""
    path = target.split("?", 1)[0]
    return method, path, headers, body


def _write_response(
    writer: asyncio.StreamWriter,
    status: int,
    document: Dict[str, Any],
    *,
    extra_headers: Tuple[Tuple[str, str], ...] = (),
) -> None:
    body = json.dumps(document, sort_keys=True).encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    head = [f"HTTP/1.1 {status} {reason}"]
    for name, value in _JSON_HEADERS + extra_headers:
        head.append(f"{name}: {value}")
    head.append(f"Content-Length: {len(body)}")
    head.append("Connection: close")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)


def _ws_frame(opcode: int, payload: bytes) -> bytes:
    """One unmasked server-to-client WebSocket frame (FIN set)."""
    head = bytes([0x80 | opcode])
    length = len(payload)
    if length < 126:
        head += bytes([length])
    elif length < (1 << 16):
        head += bytes([126]) + struct.pack("!H", length)
    else:
        head += bytes([127]) + struct.pack("!Q", length)
    return head + payload


async def _status_of(handle: JobHandle) -> JobStatus:
    """The ``GET /v1/jobs/{id}`` view of one handle."""
    result = None
    error: Optional[str] = None
    if handle.state is JobState.COMPLETED:
        result = await handle.result()
    elif handle.state in (JobState.CANCELLED, JobState.FAILED):
        try:
            await handle.result()
        except Exception as failure:
            error = str(failure)
    return JobStatus(
        job_id=handle.job_id,
        state=handle.state.value,
        label=handle.spec.label,
        client_id=handle.client_id,
        priority=handle.priority,
        completed_replicas=handle.completed_replicas,
        total_replicas=handle.total_replicas,
        result=result,
        error=error,
    )


# ------------------------------------------------------------ thread host
class ServerThread:
    """A manager + gateway on a dedicated thread with its own event loop.

    The synchronous host for the blocking :class:`repro.client.ServiceClient`::

        with ServerThread(jobs=1, client_weights={"a": 2, "b": 1}) as server:
            client = ServiceClient(server.base_url, client_id="a")
            accepted = client.submit(spec)
            result = client.wait(accepted.job_id)

    ``manager_kwargs`` pass straight to :class:`JobManager`, which is
    constructed *inside* the serving thread so every asyncio primitive
    binds to the right loop.  ``call`` / ``run`` marshal work onto that
    loop for cross-thread introspection (pausing the scheduler, reading
    metrics) without data races.
    """

    def __init__(self, *, host: str = "127.0.0.1", **manager_kwargs: Any) -> None:
        self.host = host
        self._manager_kwargs = manager_kwargs
        self.port: Optional[int] = None
        self.manager: Optional[JobManager] = None
        self.gateway: Optional[GatewayServer] = None
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._startup_error: Optional[BaseException] = None

    @property
    def base_url(self) -> str:
        if self.port is None:
            raise RuntimeError("server is not running")
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "ServerThread":
        if self._thread is not None:
            raise RuntimeError("server thread already started")
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._serve()), daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            self._thread.join()
            raise self._startup_error
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        assert self.loop is not None and self._stop is not None
        self.loop.call_soon_threadsafe(self._stop.set)
        self._thread.join()
        self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *_exc_info: Any) -> None:
        self.stop()

    async def _serve(self) -> None:
        self.loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            self.manager = JobManager(**self._manager_kwargs)
            await self.manager.start()
            self.gateway = GatewayServer(self.manager, host=self.host)
            await self.gateway.start()
            self.port = self.gateway.port
        except BaseException as error:
            self._startup_error = error
            self._ready.set()
            return
        self._ready.set()
        await self._stop.wait()
        await self.gateway.aclose()
        await self.manager.aclose()

    # --------------------------------------------------------- marshalling
    def run(self, coroutine: Awaitable[Any]) -> Any:
        """Run ``coroutine`` on the server loop; blocks for the result."""
        assert self.loop is not None
        return asyncio.run_coroutine_threadsafe(coroutine, self.loop).result()

    def call(self, function: Callable[[], Any]) -> Any:
        """Run a plain callable on the server loop thread; blocks."""

        async def _invoke() -> Any:
            return function()

        return self.run(_invoke())
