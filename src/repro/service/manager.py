"""Async job manager: the simulation-as-a-service front-end.

:class:`JobManager` accepts :class:`~repro.api.spec.ExperimentSpec`
requests from any number of concurrent clients and feeds the replica jobs
of :mod:`repro.parallel` to a shared worker pool:

* **Per-client fair scheduling** -- every submission names a client id,
  and the replica queue is a weighted deficit-round-robin scheduler
  (:mod:`repro.service.fairness`) denominated in the admission
  controller's unit-cost estimate, so no client can starve another
  regardless of how much work it submits.  Within one client the old
  contract holds exactly: jobs carry an integer priority (lower runs
  first); within a priority class, replicas run in submission order.
* **Admission control** -- the queue is bounded by *estimated cost* (a
  work proxy: references x nodes x replicas).  Once the pending cost
  would exceed the budget, :meth:`JobManager.submit` raises
  :class:`AdmissionError` carrying a ``retry_after_s`` estimate derived
  from the observed completion rate, so overloaded clients back off
  instead of piling up unbounded queues.  A job is always admitted when
  the queue is empty, however large, so no request can starve.
* **Content-addressed dedup** -- with a :class:`~repro.service.cache.
  ResultCache` attached, every replica is looked up before it is
  simulated, and identical replicas *in flight* are joined (the second
  job awaits the first's future), so overlapping sweeps from concurrent
  clients compute each unique replica exactly once.
* **Streaming progress** -- every job exposes an async event iterator
  (:meth:`JobHandle.events`) and an awaitable merged result
  (:meth:`JobHandle.result`); see :mod:`repro.service.events` for the
  ordering contract.
* **Cancellation** -- :meth:`JobHandle.cancel` takes effect between
  replicas: queued replicas are skipped, the stream ends with
  ``JobCancelled``, and ``result()`` raises :class:`JobCancelledError`.

The pool itself is pluggable: :class:`ProcessPoolBackend` fans replicas
out over a persistent process pool (the service-lifetime analogue of
:func:`repro.parallel.executor.run_replica_jobs`), while
:class:`InlinePoolBackend` runs them on the event-loop thread --
deterministic and pool-free, used by tests, ``--self-test`` and
single-worker services.  Backends count their submissions, which is how
the test suite proves a cached replay performs zero simulation work.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from enum import Enum
from typing import Any, AsyncIterator, Awaitable, Callable, Dict, List, Optional, Tuple

from repro.api.spec import ExperimentSpec
from repro.parallel.executor import (
    WorkerPoolError,
    resolve_jobs,
    worker_crash_message,
)
from repro.parallel.jobs import ReplicaJob, execute_replica_job
from repro.parallel.sweep import select_minimum_replica
from repro.service.cache import ResultCache, replica_key
from repro.service.fairness import (
    DEFAULT_CLIENT_ID,
    DeficitRoundRobinQueue,
)
from repro.service.events import (
    SOURCE_CACHE,
    SOURCE_COMPUTED,
    SOURCE_DEDUPED,
    JobAdmitted,
    JobCancelled,
    JobCompleted,
    JobEvent,
    JobFailed,
    JobProgress,
    ReplicaCompleted,
    ReplicaFailed,
    ReplicaRetried,
    ServiceDegraded,
)
from repro.service.journal import JobJournal, JournalError
from repro.service.metrics import ServiceMetrics
from repro.system.config import SystemConfig
from repro.system.results import RunResult
from repro.workloads.profiles import WorkloadProfile

#: Default admission budget, in cost units (see :func:`replica_cost`).
#: Roughly one hundred default-scale replicas of the 16-node system.
DEFAULT_MAX_PENDING_COST = 5_000_000

#: Cost-units-per-second seed for the retry-after estimate, refined from
#: observed completions as the service runs.
_DEFAULT_COST_RATE = 100_000.0

#: Per-job attempt budget of the retry policy (attempts per replica).
DEFAULT_MAX_ATTEMPTS = 3

#: Deterministic exponential backoff: ``base * 2**(attempt-1)``, capped.
DEFAULT_BACKOFF_BASE_S = 0.05
DEFAULT_BACKOFF_CAP_S = 2.0


class WorkerCrashError(WorkerPoolError):
    """A pool worker died mid-replica; the pool was rebuilt for retry."""


#: The transient failure classes of the retry policy: a worker crash, a
#: deadline overrun, or an I/O hiccup can all succeed on retry.  (Builtin
#: ``TimeoutError`` and ``asyncio.TimeoutError`` are distinct on Python
#: 3.10 and aliased on 3.11+, so both are listed.)  Everything else --
#: spec errors, model bugs -- is permanent and quarantines immediately.
TRANSIENT_EXCEPTIONS = (
    BrokenProcessPool,
    WorkerPoolError,
    asyncio.TimeoutError,
    TimeoutError,
    OSError,
)


def is_transient(error: BaseException) -> bool:
    """Whether the retry policy classifies ``error`` as worth retrying."""
    return isinstance(error, TRANSIENT_EXCEPTIONS)


class AdmissionError(RuntimeError):
    """The bounded queue is full; retry after ``retry_after_s`` seconds."""

    def __init__(self, pending_cost: int, budget: int, retry_after_s: float):
        super().__init__(
            f"admission rejected: pending cost {pending_cost} exceeds the "
            f"budget {budget}; retry after {retry_after_s:.2f}s"
        )
        self.pending_cost = pending_cost
        self.budget = budget
        self.retry_after_s = retry_after_s


class JobCancelledError(RuntimeError):
    """Awaiting the result of a job that was cancelled."""

    def __init__(self, job_id: str):
        super().__init__(f"job {job_id} was cancelled")
        self.job_id = job_id


class JobState(str, Enum):
    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    CANCELLED = "cancelled"
    FAILED = "failed"


def replica_cost(config: SystemConfig, profile: WorkloadProfile) -> int:
    """Estimated cost of one replica (a simulated-references work proxy)."""
    return max(1, profile.references_per_node * config.num_nodes)


def job_cost(config: SystemConfig, profile: WorkloadProfile) -> int:
    """Estimated cost of a whole job (every perturbation replica)."""
    return replica_cost(config, profile) * config.perturbation_replicas


# ---------------------------------------------------------------- backends
class PoolBackend:
    """Where replica jobs actually run.  Subclasses count submissions."""

    max_workers: int = 1
    submissions: int = 0

    async def run(self, job: ReplicaJob) -> RunResult:
        raise NotImplementedError

    def close(self) -> None:
        """Release pool resources (idempotent)."""


class InlinePoolBackend(PoolBackend):
    """Runs replicas synchronously on the event-loop thread.

    Deterministic and process-free: the replica computes between two
    scheduling points, so tests and ``--self-test`` see a reproducible
    interleaving.  One logical worker.
    """

    def __init__(self) -> None:
        self.submissions = 0

    async def run(self, job: ReplicaJob) -> RunResult:
        self.submissions += 1
        # One cooperative yield so cancellations and joiners queued before
        # this replica get to run first, mirroring a real pool handoff.
        await asyncio.sleep(0)
        return execute_replica_job(job)


class ProcessPoolBackend(PoolBackend):
    """A persistent ``ProcessPoolExecutor`` shared across the service life.

    Unlike :func:`repro.parallel.executor.run_replica_jobs`, which builds a
    pool per call, the executor here stays warm across jobs, so each
    worker's per-process stream cache keeps paying off across requests.

    A worker death (``BrokenProcessPool``) no longer poisons the backend:
    the broken executor is discarded, :class:`WorkerCrashError` is raised
    with an actionable message, and the next submission lazily builds a
    fresh pool -- so the manager's retry policy transparently requeues the
    in-flight replicas that died with the pool.
    """

    def __init__(self, max_workers: int) -> None:
        if max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers
        self.submissions = 0
        self.pool_rebuilds = 0
        self._executor: Optional[ProcessPoolExecutor] = None

    async def run(self, job: ReplicaJob) -> RunResult:
        self.submissions += 1
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(
                self._ensure_executor(), execute_replica_job, job
            )
        except BrokenProcessPool as error:
            self._discard_broken_pool()
            raise WorkerCrashError(
                worker_crash_message(
                    f"simulating replica {job.replica_index}"
                )
            ) from error

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._executor

    def _discard_broken_pool(self) -> None:
        """Drop the broken executor; the next run() builds a fresh pool."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
            self.pool_rebuilds += 1

    @property
    def executor(self) -> Optional[ProcessPoolExecutor]:
        """The live executor, if one has been built (tests kill its workers)."""
        return self._executor

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None


def make_backend(jobs: Optional[int] = 1) -> PoolBackend:
    """Backend for a ``jobs`` knob: inline when serial, process pool else.

    The process-pool backend carries the same worker-bootstrap-failure
    guard as :func:`repro.parallel.executor.run_replica_jobs`: a dead
    worker surfaces as :class:`WorkerCrashError` (with the likely causes
    spelled out), never as a bare ``BrokenProcessPool``.
    """
    workers = resolve_jobs(jobs)
    if workers <= 1:
        return InlinePoolBackend()
    return ProcessPoolBackend(workers)


# ------------------------------------------------------------------- jobs
@dataclass
class _ReplicaUnit:
    """One schedulable unit of work: a single replica of one job."""

    handle: "JobHandle"
    replica_index: int
    key: str
    job: ReplicaJob
    cost: int


class JobHandle:
    """A submitted job: streaming events, awaitable result, cancellation.

    Events are single-consumer: exactly one ``async for`` over
    :meth:`events` sees the stream.  :meth:`result` may be awaited by any
    number of tasks.
    """

    def __init__(
        self,
        job_id: str,
        spec: ExperimentSpec,
        config: SystemConfig,
        profile: WorkloadProfile,
        priority: int,
        keys: List[str],
        cancel: Callable[["JobHandle"], bool],
        client_id: str = DEFAULT_CLIENT_ID,
    ) -> None:
        self.job_id = job_id
        self.spec = spec
        self.config = config
        self.profile = profile
        self.priority = priority
        self.client_id = client_id
        self.keys = keys
        self.admitted = False
        self.state = JobState.QUEUED
        self._cancel = cancel
        self._results: Dict[int, RunResult] = {}
        self._failures: Dict[int, str] = {}
        self._events: "asyncio.Queue[JobEvent]" = asyncio.Queue()
        self._stream_closed = False
        self._done = asyncio.Event()
        self._merged: Optional[RunResult] = None
        self._error: Optional[BaseException] = None

    @property
    def total_replicas(self) -> int:
        return len(self.keys)

    @property
    def completed_replicas(self) -> int:
        """How many replicas have finished so far (gauge for status polls)."""
        return len(self._results)

    @property
    def quarantined(self) -> Dict[int, str]:
        """Replica index -> error repr for replicas that were quarantined."""
        return dict(self._failures)

    @property
    def cancelled(self) -> bool:
        return self.state is JobState.CANCELLED

    def cancel(self) -> bool:
        """Request cancellation; ``True`` if the job was still live."""
        return self._cancel(self)

    async def events(self) -> AsyncIterator[JobEvent]:
        """Yield progress events until (and including) the terminal one."""
        while True:
            event = await self._events.get()
            yield event
            if event.terminal:
                return

    async def result(self) -> RunResult:
        """The merged minimum-replica result (raises if cancelled/failed)."""
        await self._done.wait()
        if self._error is not None:
            raise self._error
        assert self._merged is not None
        return self._merged


# ---------------------------------------------------------------- manager
class JobManager:
    """The asyncio front-end feeding specs to the shared worker pool.

    Typical service loop::

        cache = ResultCache("~/.cache/repro-results")
        async with JobManager(jobs=4, cache=cache) as manager:
            handle = manager.submit(spec, priority=1)
            async for event in handle.events():
                ...
            result = await handle.result()
            await manager.drain()

    ``jobs`` picks the backend (1 = inline on the event loop, N = an
    ``N``-worker persistent process pool, 0 = one worker per CPU); pass
    ``backend=`` to inject a custom one.  ``max_pending_cost=None``
    disables admission control.

    **Fault tolerance**: replica failures are classified by
    :func:`is_transient`; transient ones (worker crash, deadline overrun,
    I/O error) retry with deterministic exponential backoff
    (``backoff_base * 2**(attempt-1)``, capped at ``backoff_cap``) up to
    ``max_attempts`` attempts, each bounded by ``replica_timeout`` seconds
    when one is set.  A replica that exhausts its budget (or fails
    permanently) is *quarantined* -- a ``ReplicaFailed`` event, not a job
    failure -- and the job completes over the replicas that did finish;
    only a job with zero surviving replicas fails.  With a
    :class:`~repro.service.journal.JobJournal` attached, every lifecycle
    transition is journalled durably and :meth:`recover` resubmits the
    jobs a dead service left unfinished (their completed replicas replay
    from the cache, so only the missing ones are recomputed).
    """

    def __init__(
        self,
        *,
        jobs: Optional[int] = 1,
        cache: Optional[ResultCache] = None,
        backend: Optional[PoolBackend] = None,
        max_pending_cost: Optional[int] = DEFAULT_MAX_PENDING_COST,
        metrics: Optional[ServiceMetrics] = None,
        base_config: Optional[SystemConfig] = None,
        clock: Callable[[], float] = time.monotonic,
        journal: Optional[JobJournal] = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        replica_timeout: Optional[float] = None,
        backoff_base: float = DEFAULT_BACKOFF_BASE_S,
        backoff_cap: float = DEFAULT_BACKOFF_CAP_S,
        sleep: Callable[[float], Awaitable[None]] = asyncio.sleep,
        client_weights: Optional[Dict[str, int]] = None,
        record_schedule: bool = False,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.backend = backend if backend is not None else make_backend(jobs)
        self.cache = cache
        self.max_pending_cost = max_pending_cost
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.metrics.workers_total = self.backend.max_workers
        self.base_config = base_config
        self.journal = journal
        self.max_attempts = max_attempts
        self.replica_timeout = replica_timeout
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._sleep = sleep
        self._clock = clock
        self.scheduler = DeficitRoundRobinQueue(
            weights=client_weights, record_schedule=record_schedule
        )
        self._queue = self.scheduler
        #: Every handle this manager ever created, by job id (the registry
        #: behind ``GET /v1/jobs/{id}`` and cross-request cancellation).
        self.jobs: Dict[str, JobHandle] = {}
        # Job ids stay unique across every service life sharing one
        # journal: numbering continues after the journalled submissions.
        start = 1 if journal is None else journal.count("job-submitted") + 1
        self._job_numbers = itertools.count(start)
        self._inflight: Dict[str, "asyncio.Future[RunResult]"] = {}
        self._workers: List["asyncio.Task[None]"] = []
        self._cost_rate = _DEFAULT_COST_RATE
        self._closed = False
        self._journal_degraded = False
        self._journal_reason = ""
        self._degraded_announced: set = set()

    # ------------------------------------------------------------ lifecycle
    async def __aenter__(self) -> "JobManager":
        await self.start()
        return self

    async def __aexit__(self, *_exc_info: Any) -> None:
        await self.aclose()

    async def start(self) -> None:
        """Spawn one worker task per backend worker (idempotent)."""
        if self._closed:
            raise RuntimeError("manager is closed")
        while len(self._workers) < self.backend.max_workers:
            self._workers.append(asyncio.create_task(self._worker()))

    async def drain(self) -> None:
        """Wait until every queued replica has been processed or skipped."""
        await self._queue.join()

    async def aclose(self) -> None:
        """Stop the workers and release the backend (no implicit drain)."""
        self._closed = True
        for task in self._workers:
            task.cancel()
        if self._workers:
            await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers.clear()
        self.backend.close()

    # --------------------------------------------------------------- submit
    def submit(
        self,
        spec: ExperimentSpec,
        *,
        priority: int = 0,
        client_id: str = DEFAULT_CLIENT_ID,
    ) -> JobHandle:
        """Admit ``spec`` as a job and enqueue its replicas.

        Raises :class:`AdmissionError` when the pending-cost budget is
        exhausted (unless the queue is empty, which always admits).
        ``client_id`` selects the deficit-round-robin lane the job's
        replicas are scheduled in (see :mod:`repro.service.fairness`);
        within a client, lower ``priority`` values run earlier and ties
        are FIFO.
        """
        if self._closed:
            raise RuntimeError("manager is closed")
        config = spec.config(self.base_config)
        profile = spec.profile()
        unit_cost = replica_cost(config, profile)
        total_cost = unit_cost * config.perturbation_replicas
        self._admit(total_cost)
        return self._launch(spec, priority, config, profile, unit_cost, client_id)

    async def submit_async(
        self,
        spec: ExperimentSpec,
        *,
        priority: int = 0,
        client_id: str = DEFAULT_CLIENT_ID,
    ) -> JobHandle:
        """:meth:`submit` for network front-ends: the handle is registered
        (and therefore cancellable) *before* the admission decision.

        The gateway registers a job id as soon as the request is parsed,
        then yields to the event loop before admission -- so a cancel can
        land in between.  A job cancelled in that window is never
        admitted: it emits **exactly one** terminal :class:`JobCancelled`
        event (no ``JobAdmitted``), enqueues nothing, and still resolves
        :meth:`JobHandle.result` with :class:`JobCancelledError`.
        """
        if self._closed:
            raise RuntimeError("manager is closed")
        config = spec.config(self.base_config)
        profile = spec.profile()
        unit_cost = replica_cost(config, profile)
        handle = self._prepare_handle(spec, priority, config, profile, client_id)
        # The admission decision is a separate scheduling step: a
        # DELETE racing this submit can cancel the registered handle here.
        await asyncio.sleep(0)
        if handle.state is not JobState.QUEUED:
            return handle
        try:
            self._admit(unit_cost * config.perturbation_replicas)
        except AdmissionError:
            self.jobs.pop(handle.job_id, None)
            raise
        self._activate(handle, unit_cost)
        return handle

    def get_job(self, job_id: str) -> Optional[JobHandle]:
        """The handle registered under ``job_id``, if this manager made one."""
        return self.jobs.get(job_id)

    def _launch(
        self,
        spec: ExperimentSpec,
        priority: int,
        config: SystemConfig,
        profile: WorkloadProfile,
        unit_cost: int,
        client_id: str = DEFAULT_CLIENT_ID,
    ) -> JobHandle:
        """Enqueue an already-admitted job (shared by submit and recover)."""
        handle = self._prepare_handle(spec, priority, config, profile, client_id)
        self._activate(handle, unit_cost)
        return handle

    def _prepare_handle(
        self,
        spec: ExperimentSpec,
        priority: int,
        config: SystemConfig,
        profile: WorkloadProfile,
        client_id: str,
    ) -> JobHandle:
        """Create and register a handle (no admission, nothing enqueued)."""
        job_id = f"job-{next(self._job_numbers)}"
        keys = [
            replica_key(config, profile, index)
            for index in range(config.perturbation_replicas)
        ]
        handle = JobHandle(
            job_id, spec, config, profile, priority, keys, self._cancel, client_id
        )
        self.jobs[job_id] = handle
        return handle

    def _activate(self, handle: JobHandle, unit_cost: int) -> None:
        """Admit a prepared handle: count it, journal it, enqueue its units."""
        keys = handle.keys
        handle.admitted = True
        self.metrics.jobs_submitted += 1
        self.metrics.note_enqueued(len(keys), unit_cost * len(keys))
        self._journal_record(
            handle,
            "job-submitted",
            job=handle.job_id,
            priority=handle.priority,
            client=handle.client_id,
            spec=handle.spec.as_document(),
            keys=keys,
        )
        self._emit(
            handle,
            JobAdmitted(
                handle.job_id,
                label=handle.spec.label,
                total_replicas=len(keys),
                priority=handle.priority,
            ),
        )
        config, profile = handle.config, handle.profile
        for index, key in enumerate(keys):
            unit = _ReplicaUnit(
                handle=handle,
                replica_index=index,
                key=key,
                job=ReplicaJob(config=config, profile=profile, replica_index=index),
                cost=unit_cost,
            )
            self._queue.put_nowait(
                handle.client_id, handle.priority, unit_cost, unit
            )
        return None

    def recover(self) -> List[JobHandle]:
        """Resubmit the journal's unfinished jobs; returns their handles.

        Each unfinished job (submitted but never terminal, and not already
        recovered by a previous service life) is resubmitted with its
        original priority, bypassing admission control.  Replicas the
        journal recorded as complete are served from the attached
        :class:`~repro.service.cache.ResultCache` frontier, so only the
        missing replicas are actually recomputed; the merged result is
        bit-identical to an uninterrupted run.
        """
        if self._closed:
            raise RuntimeError("manager is closed")
        if self.journal is None:
            return []
        handles: List[JobHandle] = []
        for entry in self.journal.unfinished_jobs():
            spec = ExperimentSpec.from_document(entry.spec)
            config = spec.config(self.base_config)
            profile = spec.profile()
            handle = self._launch(
                spec,
                entry.priority,
                config,
                profile,
                replica_cost(config, profile),
                entry.client,
            )
            self.metrics.jobs_recovered += 1
            self._journal_record(
                handle,
                "job-recovered",
                job=handle.job_id,
                **{"from": entry.job_id},
            )
            handles.append(handle)
        return handles

    def _admit(self, total_cost: int) -> None:
        if self.max_pending_cost is None:
            return
        pending = self.metrics.pending_cost
        if pending <= 0 or pending + total_cost <= self.max_pending_cost:
            return
        self.metrics.jobs_rejected += 1
        raise AdmissionError(
            pending_cost=pending,
            budget=self.max_pending_cost,
            retry_after_s=self._retry_after(),
        )

    def _retry_after(self) -> float:
        workers = max(1, self.backend.max_workers)
        rate = max(1.0, self._cost_rate) * workers
        return max(0.05, self.metrics.pending_cost / rate)

    # --------------------------------------------------------------- cancel
    def _cancel(self, handle: JobHandle) -> bool:
        if handle.state in (
            JobState.COMPLETED,
            JobState.CANCELLED,
            JobState.FAILED,
        ):
            return False
        handle.state = JobState.CANCELLED
        self.metrics.jobs_cancelled += 1
        handle._error = JobCancelledError(handle.job_id)
        self._journal_record(handle, "job-cancelled", job=handle.job_id)
        self._emit(handle, JobCancelled(handle.job_id))
        handle._done.set()
        return True

    # -------------------------------------------------------------- workers
    def pause_scheduling(self) -> None:
        """Hold every queued unit back (enqueues still accepted).

        Used by tests and the ``--self-test`` fairness pass to build a
        deterministic multi-client backlog before any unit dispatches.
        """
        self._queue.hold()

    def resume_scheduling(self) -> None:
        """Release units held back by :meth:`pause_scheduling`."""
        self._queue.release()

    async def _worker(self) -> None:
        while True:
            unit = await self._queue.get()
            try:
                await self._process(unit)
            except Exception as error:  # defensive: keep the worker alive
                self._fail(unit.handle, error)
            finally:
                self._queue.task_done()

    async def _process(self, unit: _ReplicaUnit) -> None:
        handle = unit.handle
        self.metrics.note_dequeued(unit.cost)
        if handle.state in (JobState.CANCELLED, JobState.FAILED):
            self.metrics.replicas_skipped_cancelled += 1
            return
        if handle.state is JobState.QUEUED:
            handle.state = JobState.RUNNING

        result: Optional[RunResult] = None
        source = SOURCE_COMPUTED
        if self.cache is not None:
            result = self.cache.get(unit.key)
            self._note_cache_health(handle)
            if result is not None:
                source = SOURCE_CACHE
                self.metrics.replicas_from_cache += 1
        if result is None:
            pending = self._inflight.get(unit.key)
            if pending is not None:
                try:
                    result = _copy_result(await pending)
                except Exception as error:
                    # The computing job already burned the attempt budget;
                    # joiners quarantine without re-running it themselves.
                    self._quarantine(handle, unit.replica_index, error, attempts=0)
                    return
                source = SOURCE_DEDUPED
                self.metrics.replicas_deduped += 1
            else:
                result = await self._compute(unit)
                if result is None:
                    return  # quarantined
        if handle.state in (JobState.CANCELLED, JobState.FAILED):
            self.metrics.replicas_skipped_cancelled += 1
            return
        self._record(handle, unit.replica_index, unit.key, result, source)

    async def _compute(self, unit: _ReplicaUnit) -> Optional[RunResult]:
        """Run one replica (with retries), publishing the in-flight future."""
        future: "asyncio.Future[RunResult]" = asyncio.get_running_loop().create_future()
        self._inflight[unit.key] = future
        result, error, attempts = await self._run_attempts(unit)
        if result is None:
            assert error is not None
            future.set_exception(error)
            future.exception()  # joiners still observe it; silences GC warning
            self._inflight.pop(unit.key, None)
            self._quarantine(unit.handle, unit.replica_index, error, attempts)
            return None
        self.metrics.replicas_computed += 1
        if self.cache is not None:
            self.cache.put(unit.key, result)
            self._note_cache_health(unit.handle)
        future.set_result(result)
        self._inflight.pop(unit.key, None)
        return result

    async def _run_attempts(
        self, unit: _ReplicaUnit
    ) -> Tuple[Optional[RunResult], Optional[BaseException], int]:
        """The retry loop: ``(result, final_error, attempts_used)``.

        Transient failures retry after a deterministic exponential backoff
        until the attempt budget runs out; permanent failures stop at the
        attempt that raised them.  Each attempt is bounded by
        ``replica_timeout`` seconds when one is configured.
        """
        handle = unit.handle
        for attempt in range(1, self.max_attempts + 1):
            self.metrics.note_worker_busy(+1)
            started = self._clock()
            try:
                if self.replica_timeout is not None:
                    result = await asyncio.wait_for(
                        self.backend.run(unit.job), timeout=self.replica_timeout
                    )
                else:
                    result = await self.backend.run(unit.job)
            except asyncio.CancelledError:
                self.metrics.note_worker_busy(-1)
                raise
            except Exception as error:
                self.metrics.note_worker_busy(-1)
                transient = self._note_failure(error)
                if not transient or attempt >= self.max_attempts:
                    return None, error, attempt
                backoff = self._backoff(attempt)
                self.metrics.replicas_retried += 1
                self._emit(
                    handle,
                    ReplicaRetried(
                        handle.job_id,
                        replica_index=unit.replica_index,
                        attempt=attempt,
                        error=repr(error),
                        backoff_s=backoff,
                    ),
                )
                self._journal_record(
                    handle,
                    "replica-retried",
                    job=handle.job_id,
                    replica=unit.replica_index,
                    attempt=attempt,
                    error=repr(error),
                )
                if backoff > 0:
                    await self._sleep(backoff)
                continue
            self.metrics.note_worker_busy(-1)
            self._observe_rate(unit.cost, self._clock() - started)
            return result, None, attempt
        raise AssertionError("unreachable: the attempt loop always returns")

    def _backoff(self, attempt: int) -> float:
        """Deterministic exponential backoff before attempt ``attempt + 1``."""
        return min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))

    def _note_failure(self, error: BaseException) -> bool:
        """Count one failed attempt by class; ``True`` when transient."""
        if isinstance(error, (BrokenProcessPool, WorkerPoolError)):
            self.metrics.worker_crashes += 1
            return True
        if isinstance(error, (asyncio.TimeoutError, TimeoutError)):
            self.metrics.replica_timeouts += 1
            return True
        return is_transient(error)

    def _record(
        self,
        handle: JobHandle,
        replica_index: int,
        key: str,
        result: RunResult,
        source: str,
    ) -> None:
        handle._results[replica_index] = result
        self._journal_record(
            handle,
            "replica-completed",
            job=handle.job_id,
            replica=replica_index,
            key=key,
            source=source,
        )
        self._emit(
            handle,
            ReplicaCompleted(
                handle.job_id,
                replica_index=replica_index,
                source=source,
                runtime_ns=result.runtime_ns,
            ),
        )
        finished = list(handle._results.values())
        self._emit(
            handle,
            JobProgress(
                handle.job_id,
                completed=len(finished),
                total=handle.total_replicas,
                best_runtime_ns=min(entry.runtime_ns for entry in finished),
                misses=sum(entry.misses for entry in finished),
            ),
        )
        self._finish_if_done(handle)

    def _quarantine(
        self,
        handle: JobHandle,
        replica_index: int,
        error: BaseException,
        attempts: int,
    ) -> None:
        """Record one exhausted replica without killing its siblings."""
        if handle.state in (
            JobState.COMPLETED,
            JobState.CANCELLED,
            JobState.FAILED,
        ):
            return
        permanent = not is_transient(error)
        handle._failures[replica_index] = repr(error)
        self.metrics.replicas_quarantined += 1
        self._journal_record(
            handle,
            "replica-failed",
            job=handle.job_id,
            replica=replica_index,
            attempts=attempts,
            error=repr(error),
        )
        self._emit(
            handle,
            ReplicaFailed(
                handle.job_id,
                replica_index=replica_index,
                attempts=attempts,
                error=repr(error),
                permanent=permanent,
            ),
        )
        if len(handle._failures) == handle.total_replicas:
            self._fail(
                handle,
                RuntimeError(
                    f"all {handle.total_replicas} replica(s) of "
                    f"{handle.job_id} were quarantined; last error: {error!r}"
                ),
            )
            return
        self._finish_if_done(handle)

    def _finish_if_done(self, handle: JobHandle) -> None:
        """Complete the job once every replica has settled (done or failed)."""
        if handle.state in (
            JobState.COMPLETED,
            JobState.CANCELLED,
            JobState.FAILED,
        ):
            return
        settled = len(handle._results) + len(handle._failures)
        if settled < handle.total_replicas or not handle._results:
            return
        ordered = [
            handle._results[index]
            for index in sorted(handle._results)
        ]
        merged = select_minimum_replica(ordered)
        handle.state = JobState.COMPLETED
        handle._merged = merged
        self.metrics.jobs_completed += 1
        self._journal_record(handle, "job-completed", job=handle.job_id)
        self._emit(handle, JobCompleted(handle.job_id, result=merged))
        handle._done.set()

    def _fail(self, handle: JobHandle, error: BaseException) -> None:
        if handle.state in (
            JobState.COMPLETED,
            JobState.CANCELLED,
            JobState.FAILED,
        ):
            return
        handle.state = JobState.FAILED
        self.metrics.jobs_failed += 1
        handle._error = error
        self._journal_record(
            handle, "job-failed", job=handle.job_id, error=repr(error)
        )
        self._emit(handle, JobFailed(handle.job_id, error=repr(error)))
        handle._done.set()

    def _emit(self, handle: JobHandle, event: JobEvent) -> None:
        if handle._stream_closed:
            return
        handle._events.put_nowait(event)
        if event.terminal:
            handle._stream_closed = True

    def _observe_rate(self, cost: int, elapsed: float) -> None:
        if elapsed > 0:
            self._cost_rate = 0.5 * (self._cost_rate + cost / elapsed)

    # ---------------------------------------------------------------- health
    def _journal_record(
        self, handle: Optional[JobHandle], record_type: str, **payload: Any
    ) -> None:
        """Append one journal record; a journal fault degrades, never fails.

        A failed append (disk full, torn write) latches the journal into
        degraded mode: the service keeps running without durability, the
        condition is announced via :class:`ServiceDegraded` and the
        ``health`` metrics block, and no job is failed because of it.
        """
        if self.journal is None or self._journal_degraded:
            return
        try:
            self.journal.append(record_type, **payload)
        except (OSError, JournalError) as error:
            self._journal_degraded = True
            self._journal_reason = f"journal append failed: {error}"
            self._announce_degraded(handle, "journal", self._journal_reason)

    def _note_cache_health(self, handle: JobHandle) -> None:
        """Announce cache degradation once, on the stream that detected it."""
        if self.cache is not None and self.cache.degraded:
            self._announce_degraded(handle, "cache", self.cache.degraded_reason)

    def _announce_degraded(
        self, handle: Optional[JobHandle], component: str, reason: str
    ) -> None:
        if component in self._degraded_announced:
            return
        self._degraded_announced.add(component)
        if handle is not None:
            self._emit(
                handle,
                ServiceDegraded(handle.job_id, component=component, reason=reason),
            )

    def health(self) -> Dict[str, Any]:
        """The degradation report embedded in every metrics snapshot."""
        components: Dict[str, str] = {}
        if self.cache is not None and self.cache.degraded:
            components["cache"] = self.cache.degraded_reason
        if self._journal_degraded:
            components["journal"] = self._journal_reason
        return {"degraded": bool(components), "components": components}

    # -------------------------------------------------------------- introspect
    def snapshot(self) -> Dict[str, Any]:
        """Metrics snapshot including cache stats, health and client shares."""
        cache_stats = self.cache.stats_dict() if self.cache is not None else None
        return self.metrics.snapshot(
            cache_stats, self.health(), self.scheduler.clients_dict()
        )


def _copy_result(result: RunResult) -> RunResult:
    """A private copy of a shared (deduped) result, safe to merge-mutate."""
    return replace(
        result,
        traffic_bytes_by_category=dict(result.traffic_bytes_by_category),
    )
