"""Async job manager: the simulation-as-a-service front-end.

:class:`JobManager` accepts :class:`~repro.api.spec.ExperimentSpec`
requests from any number of concurrent clients and feeds the replica jobs
of :mod:`repro.parallel` to a shared worker pool:

* **Priority + FIFO fairness** -- jobs carry an integer priority (lower
  runs first); within a priority class, replicas run in submission order.
* **Admission control** -- the queue is bounded by *estimated cost* (a
  work proxy: references x nodes x replicas).  Once the pending cost
  would exceed the budget, :meth:`JobManager.submit` raises
  :class:`AdmissionError` carrying a ``retry_after_s`` estimate derived
  from the observed completion rate, so overloaded clients back off
  instead of piling up unbounded queues.  A job is always admitted when
  the queue is empty, however large, so no request can starve.
* **Content-addressed dedup** -- with a :class:`~repro.service.cache.
  ResultCache` attached, every replica is looked up before it is
  simulated, and identical replicas *in flight* are joined (the second
  job awaits the first's future), so overlapping sweeps from concurrent
  clients compute each unique replica exactly once.
* **Streaming progress** -- every job exposes an async event iterator
  (:meth:`JobHandle.events`) and an awaitable merged result
  (:meth:`JobHandle.result`); see :mod:`repro.service.events` for the
  ordering contract.
* **Cancellation** -- :meth:`JobHandle.cancel` takes effect between
  replicas: queued replicas are skipped, the stream ends with
  ``JobCancelled``, and ``result()`` raises :class:`JobCancelledError`.

The pool itself is pluggable: :class:`ProcessPoolBackend` fans replicas
out over a persistent process pool (the service-lifetime analogue of
:func:`repro.parallel.executor.run_replica_jobs`), while
:class:`InlinePoolBackend` runs them on the event-loop thread --
deterministic and pool-free, used by tests, ``--self-test`` and
single-worker services.  Backends count their submissions, which is how
the test suite proves a cached replay performs zero simulation work.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from enum import Enum
from typing import Any, AsyncIterator, Callable, Dict, List, Optional

from repro.api.spec import ExperimentSpec
from repro.parallel.executor import resolve_jobs
from repro.parallel.jobs import ReplicaJob, execute_replica_job
from repro.parallel.sweep import select_minimum_replica
from repro.service.cache import ResultCache, replica_key
from repro.service.events import (
    SOURCE_CACHE,
    SOURCE_COMPUTED,
    SOURCE_DEDUPED,
    JobAdmitted,
    JobCancelled,
    JobCompleted,
    JobEvent,
    JobFailed,
    JobProgress,
    ReplicaCompleted,
)
from repro.service.metrics import ServiceMetrics
from repro.system.config import SystemConfig
from repro.system.results import RunResult
from repro.workloads.profiles import WorkloadProfile

#: Default admission budget, in cost units (see :func:`replica_cost`).
#: Roughly one hundred default-scale replicas of the 16-node system.
DEFAULT_MAX_PENDING_COST = 5_000_000

#: Cost-units-per-second seed for the retry-after estimate, refined from
#: observed completions as the service runs.
_DEFAULT_COST_RATE = 100_000.0


class AdmissionError(RuntimeError):
    """The bounded queue is full; retry after ``retry_after_s`` seconds."""

    def __init__(self, pending_cost: int, budget: int, retry_after_s: float):
        super().__init__(
            f"admission rejected: pending cost {pending_cost} exceeds the "
            f"budget {budget}; retry after {retry_after_s:.2f}s"
        )
        self.pending_cost = pending_cost
        self.budget = budget
        self.retry_after_s = retry_after_s


class JobCancelledError(RuntimeError):
    """Awaiting the result of a job that was cancelled."""

    def __init__(self, job_id: str):
        super().__init__(f"job {job_id} was cancelled")
        self.job_id = job_id


class JobState(str, Enum):
    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    CANCELLED = "cancelled"
    FAILED = "failed"


def replica_cost(config: SystemConfig, profile: WorkloadProfile) -> int:
    """Estimated cost of one replica (a simulated-references work proxy)."""
    return max(1, profile.references_per_node * config.num_nodes)


def job_cost(config: SystemConfig, profile: WorkloadProfile) -> int:
    """Estimated cost of a whole job (every perturbation replica)."""
    return replica_cost(config, profile) * config.perturbation_replicas


# ---------------------------------------------------------------- backends
class PoolBackend:
    """Where replica jobs actually run.  Subclasses count submissions."""

    max_workers: int = 1
    submissions: int = 0

    async def run(self, job: ReplicaJob) -> RunResult:
        raise NotImplementedError

    def close(self) -> None:
        """Release pool resources (idempotent)."""


class InlinePoolBackend(PoolBackend):
    """Runs replicas synchronously on the event-loop thread.

    Deterministic and process-free: the replica computes between two
    scheduling points, so tests and ``--self-test`` see a reproducible
    interleaving.  One logical worker.
    """

    def __init__(self) -> None:
        self.submissions = 0

    async def run(self, job: ReplicaJob) -> RunResult:
        self.submissions += 1
        # One cooperative yield so cancellations and joiners queued before
        # this replica get to run first, mirroring a real pool handoff.
        await asyncio.sleep(0)
        return execute_replica_job(job)


class ProcessPoolBackend(PoolBackend):
    """A persistent ``ProcessPoolExecutor`` shared across the service life.

    Unlike :func:`repro.parallel.executor.run_replica_jobs`, which builds a
    pool per call, the executor here stays warm across jobs, so each
    worker's per-process stream cache keeps paying off across requests.
    """

    def __init__(self, max_workers: int) -> None:
        if max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers
        self.submissions = 0
        self._executor: Optional[ProcessPoolExecutor] = None

    async def run(self, job: ReplicaJob) -> RunResult:
        self.submissions += 1
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._ensure_executor(), execute_replica_job, job
        )

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._executor

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None


def make_backend(jobs: Optional[int] = 1) -> PoolBackend:
    """Backend for a ``jobs`` knob: inline when serial, process pool else."""
    workers = resolve_jobs(jobs)
    if workers <= 1:
        return InlinePoolBackend()
    return ProcessPoolBackend(workers)


# ------------------------------------------------------------------- jobs
@dataclass
class _ReplicaUnit:
    """One schedulable unit of work: a single replica of one job."""

    handle: "JobHandle"
    replica_index: int
    key: str
    job: ReplicaJob
    cost: int


class JobHandle:
    """A submitted job: streaming events, awaitable result, cancellation.

    Events are single-consumer: exactly one ``async for`` over
    :meth:`events` sees the stream.  :meth:`result` may be awaited by any
    number of tasks.
    """

    def __init__(
        self,
        job_id: str,
        spec: ExperimentSpec,
        config: SystemConfig,
        profile: WorkloadProfile,
        priority: int,
        keys: List[str],
        cancel: Callable[["JobHandle"], bool],
    ) -> None:
        self.job_id = job_id
        self.spec = spec
        self.config = config
        self.profile = profile
        self.priority = priority
        self.keys = keys
        self.state = JobState.QUEUED
        self._cancel = cancel
        self._results: Dict[int, RunResult] = {}
        self._events: "asyncio.Queue[JobEvent]" = asyncio.Queue()
        self._stream_closed = False
        self._done = asyncio.Event()
        self._merged: Optional[RunResult] = None
        self._error: Optional[BaseException] = None

    @property
    def total_replicas(self) -> int:
        return len(self.keys)

    @property
    def cancelled(self) -> bool:
        return self.state is JobState.CANCELLED

    def cancel(self) -> bool:
        """Request cancellation; ``True`` if the job was still live."""
        return self._cancel(self)

    async def events(self) -> AsyncIterator[JobEvent]:
        """Yield progress events until (and including) the terminal one."""
        while True:
            event = await self._events.get()
            yield event
            if event.terminal:
                return

    async def result(self) -> RunResult:
        """The merged minimum-replica result (raises if cancelled/failed)."""
        await self._done.wait()
        if self._error is not None:
            raise self._error
        assert self._merged is not None
        return self._merged


# ---------------------------------------------------------------- manager
class JobManager:
    """The asyncio front-end feeding specs to the shared worker pool.

    Typical service loop::

        cache = ResultCache("~/.cache/repro-results")
        async with JobManager(jobs=4, cache=cache) as manager:
            handle = manager.submit(spec, priority=1)
            async for event in handle.events():
                ...
            result = await handle.result()
            await manager.drain()

    ``jobs`` picks the backend (1 = inline on the event loop, N = an
    ``N``-worker persistent process pool, 0 = one worker per CPU); pass
    ``backend=`` to inject a custom one.  ``max_pending_cost=None``
    disables admission control.
    """

    def __init__(
        self,
        *,
        jobs: Optional[int] = 1,
        cache: Optional[ResultCache] = None,
        backend: Optional[PoolBackend] = None,
        max_pending_cost: Optional[int] = DEFAULT_MAX_PENDING_COST,
        metrics: Optional[ServiceMetrics] = None,
        base_config: Optional[SystemConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.backend = backend if backend is not None else make_backend(jobs)
        self.cache = cache
        self.max_pending_cost = max_pending_cost
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.metrics.workers_total = self.backend.max_workers
        self.base_config = base_config
        self._clock = clock
        self._queue: "asyncio.PriorityQueue[Any]" = asyncio.PriorityQueue()
        self._sequence = itertools.count()
        self._job_numbers = itertools.count(1)
        self._inflight: Dict[str, "asyncio.Future[RunResult]"] = {}
        self._workers: List["asyncio.Task[None]"] = []
        self._cost_rate = _DEFAULT_COST_RATE
        self._closed = False

    # ------------------------------------------------------------ lifecycle
    async def __aenter__(self) -> "JobManager":
        await self.start()
        return self

    async def __aexit__(self, *_exc_info: Any) -> None:
        await self.aclose()

    async def start(self) -> None:
        """Spawn one worker task per backend worker (idempotent)."""
        if self._closed:
            raise RuntimeError("manager is closed")
        while len(self._workers) < self.backend.max_workers:
            self._workers.append(asyncio.create_task(self._worker()))

    async def drain(self) -> None:
        """Wait until every queued replica has been processed or skipped."""
        await self._queue.join()

    async def aclose(self) -> None:
        """Stop the workers and release the backend (no implicit drain)."""
        self._closed = True
        for task in self._workers:
            task.cancel()
        if self._workers:
            await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers.clear()
        self.backend.close()

    # --------------------------------------------------------------- submit
    def submit(self, spec: ExperimentSpec, *, priority: int = 0) -> JobHandle:
        """Admit ``spec`` as a job and enqueue its replicas.

        Raises :class:`AdmissionError` when the pending-cost budget is
        exhausted (unless the queue is empty, which always admits).
        Lower ``priority`` values run earlier; ties are FIFO.
        """
        if self._closed:
            raise RuntimeError("manager is closed")
        config = spec.config(self.base_config)
        profile = spec.profile()
        unit_cost = replica_cost(config, profile)
        total_cost = unit_cost * config.perturbation_replicas
        self._admit(total_cost)

        job_id = f"job-{next(self._job_numbers)}"
        keys = [
            replica_key(config, profile, index)
            for index in range(config.perturbation_replicas)
        ]
        handle = JobHandle(job_id, spec, config, profile, priority, keys, self._cancel)
        self.metrics.jobs_submitted += 1
        self.metrics.note_enqueued(len(keys), total_cost)
        self._emit(
            handle,
            JobAdmitted(
                job_id,
                label=spec.label,
                total_replicas=len(keys),
                priority=priority,
            ),
        )
        for index, key in enumerate(keys):
            unit = _ReplicaUnit(
                handle=handle,
                replica_index=index,
                key=key,
                job=ReplicaJob(config=config, profile=profile, replica_index=index),
                cost=unit_cost,
            )
            self._queue.put_nowait((priority, next(self._sequence), unit))
        return handle

    def _admit(self, total_cost: int) -> None:
        if self.max_pending_cost is None:
            return
        pending = self.metrics.pending_cost
        if pending <= 0 or pending + total_cost <= self.max_pending_cost:
            return
        self.metrics.jobs_rejected += 1
        raise AdmissionError(
            pending_cost=pending,
            budget=self.max_pending_cost,
            retry_after_s=self._retry_after(),
        )

    def _retry_after(self) -> float:
        workers = max(1, self.backend.max_workers)
        rate = max(1.0, self._cost_rate) * workers
        return max(0.05, self.metrics.pending_cost / rate)

    # --------------------------------------------------------------- cancel
    def _cancel(self, handle: JobHandle) -> bool:
        if handle.state in (
            JobState.COMPLETED,
            JobState.CANCELLED,
            JobState.FAILED,
        ):
            return False
        handle.state = JobState.CANCELLED
        self.metrics.jobs_cancelled += 1
        handle._error = JobCancelledError(handle.job_id)
        self._emit(handle, JobCancelled(handle.job_id))
        handle._done.set()
        return True

    # -------------------------------------------------------------- workers
    async def _worker(self) -> None:
        while True:
            _priority, _sequence, unit = await self._queue.get()
            try:
                await self._process(unit)
            except Exception as error:  # defensive: keep the worker alive
                self._fail(unit.handle, error)
            finally:
                self._queue.task_done()

    async def _process(self, unit: _ReplicaUnit) -> None:
        handle = unit.handle
        self.metrics.note_dequeued(unit.cost)
        if handle.state in (JobState.CANCELLED, JobState.FAILED):
            self.metrics.replicas_skipped_cancelled += 1
            return
        if handle.state is JobState.QUEUED:
            handle.state = JobState.RUNNING

        result: Optional[RunResult] = None
        source = SOURCE_COMPUTED
        if self.cache is not None:
            result = self.cache.get(unit.key)
            if result is not None:
                source = SOURCE_CACHE
                self.metrics.replicas_from_cache += 1
        if result is None:
            pending = self._inflight.get(unit.key)
            if pending is not None:
                try:
                    result = _copy_result(await pending)
                except Exception as error:
                    self._fail(handle, error)
                    return
                source = SOURCE_DEDUPED
                self.metrics.replicas_deduped += 1
            else:
                result = await self._compute(unit)
                if result is None:
                    return  # the job already failed
        if handle.state in (JobState.CANCELLED, JobState.FAILED):
            self.metrics.replicas_skipped_cancelled += 1
            return
        self._record(handle, unit.replica_index, result, source)

    async def _compute(self, unit: _ReplicaUnit) -> Optional[RunResult]:
        """Run one replica on the backend, publishing the in-flight future."""
        future: "asyncio.Future[RunResult]" = asyncio.get_running_loop().create_future()
        self._inflight[unit.key] = future
        self.metrics.note_worker_busy(+1)
        started = self._clock()
        try:
            result = await self.backend.run(unit.job)
        except Exception as error:
            future.set_exception(error)
            future.exception()  # joiners still re-raise; silences GC warning
            self._inflight.pop(unit.key, None)
            self.metrics.note_worker_busy(-1)
            self._fail(unit.handle, error)
            return None
        self.metrics.note_worker_busy(-1)
        self._observe_rate(unit.cost, self._clock() - started)
        self.metrics.replicas_computed += 1
        if self.cache is not None:
            self.cache.put(unit.key, result)
        future.set_result(result)
        self._inflight.pop(unit.key, None)
        return result

    def _record(
        self,
        handle: JobHandle,
        replica_index: int,
        result: RunResult,
        source: str,
    ) -> None:
        handle._results[replica_index] = result
        self._emit(
            handle,
            ReplicaCompleted(
                handle.job_id,
                replica_index=replica_index,
                source=source,
                runtime_ns=result.runtime_ns,
            ),
        )
        finished = list(handle._results.values())
        self._emit(
            handle,
            JobProgress(
                handle.job_id,
                completed=len(finished),
                total=handle.total_replicas,
                best_runtime_ns=min(entry.runtime_ns for entry in finished),
                misses=sum(entry.misses for entry in finished),
            ),
        )
        if len(finished) == handle.total_replicas:
            ordered = [handle._results[index] for index in range(handle.total_replicas)]
            merged = select_minimum_replica(ordered)
            handle.state = JobState.COMPLETED
            handle._merged = merged
            self.metrics.jobs_completed += 1
            self._emit(handle, JobCompleted(handle.job_id, result=merged))
            handle._done.set()

    def _fail(self, handle: JobHandle, error: BaseException) -> None:
        if handle.state in (
            JobState.COMPLETED,
            JobState.CANCELLED,
            JobState.FAILED,
        ):
            return
        handle.state = JobState.FAILED
        self.metrics.jobs_failed += 1
        handle._error = error
        self._emit(handle, JobFailed(handle.job_id, error=repr(error)))
        handle._done.set()

    def _emit(self, handle: JobHandle, event: JobEvent) -> None:
        if handle._stream_closed:
            return
        handle._events.put_nowait(event)
        if event.terminal:
            handle._stream_closed = True

    def _observe_rate(self, cost: int, elapsed: float) -> None:
        if elapsed > 0:
            self._cost_rate = 0.5 * (self._cost_rate + cost / elapsed)

    # -------------------------------------------------------------- introspect
    def snapshot(self) -> Dict[str, Any]:
        """Metrics snapshot including the attached cache's statistics."""
        cache_stats = self.cache.stats_dict() if self.cache is not None else None
        return self.metrics.snapshot(cache_stats)


def _copy_result(result: RunResult) -> RunResult:
    """A private copy of a shared (deduped) result, safe to merge-mutate."""
    return replace(
        result,
        traffic_bytes_by_category=dict(result.traffic_bytes_by_category),
    )
