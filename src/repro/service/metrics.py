"""Service metrics: queue depth, hit/miss, admission, worker utilisation.

:class:`ServiceMetrics` is plain counters and gauges updated inline by the
job manager; :meth:`ServiceMetrics.snapshot` renders them as a
schema-versioned JSON document (the same versioned-artifact convention as the
``BENCH_*.json`` reports of :mod:`repro.perf.schema`), so the perf harness
and CI can archive service behaviour next to the benchmark numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, Optional

#: Version of the metrics snapshot document.  v2 added the ``faults`` and
#: ``health`` sections plus the recovery counters; v3 added the
#: ``clients`` section (per-client weight / served cost / backlog from the
#: deficit-round-robin scheduler) and the disk-eviction cache statistics.
METRICS_SCHEMA_VERSION = 3

#: ``kind`` discriminator of metrics snapshot documents.
METRICS_KIND = "repro.service.metrics"

_SECTION_FIELDS = {
    "jobs": (
        "jobs_submitted",
        "jobs_rejected",
        "jobs_completed",
        "jobs_cancelled",
        "jobs_failed",
        "jobs_recovered",
    ),
    "replicas": (
        "replicas_computed",
        "replicas_from_cache",
        "replicas_deduped",
        "replicas_skipped_cancelled",
    ),
    "faults": (
        "replicas_retried",
        "replicas_quarantined",
        "worker_crashes",
        "replica_timeouts",
    ),
    "queue": (
        "queue_depth",
        "peak_queue_depth",
        "pending_cost",
        "peak_pending_cost",
    ),
    "workers": ("workers_total", "workers_busy", "peak_workers_busy"),
}


class MetricsSchemaError(ValueError):
    """A metrics snapshot does not match the schema."""


@dataclass
class ServiceMetrics:
    """Counters and gauges describing one job manager's lifetime."""

    workers_total: int = 1

    # Job lifecycle.
    jobs_submitted: int = 0
    jobs_rejected: int = 0
    jobs_completed: int = 0
    jobs_cancelled: int = 0
    jobs_failed: int = 0
    jobs_recovered: int = 0

    # Replica outcomes.
    replicas_computed: int = 0
    replicas_from_cache: int = 0
    replicas_deduped: int = 0
    replicas_skipped_cancelled: int = 0

    # Fault handling (see repro.service.manager's retry policy).
    replicas_retried: int = 0
    replicas_quarantined: int = 0
    worker_crashes: int = 0
    replica_timeouts: int = 0

    # Queue state (gauges plus high-water marks).
    queue_depth: int = 0
    peak_queue_depth: int = 0
    pending_cost: int = 0
    peak_pending_cost: int = 0

    # Worker state.
    workers_busy: int = 0
    peak_workers_busy: int = 0

    extra: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------- updates
    def note_enqueued(self, units: int, cost: int) -> None:
        self.queue_depth += units
        self.pending_cost += cost
        self.peak_queue_depth = max(self.peak_queue_depth, self.queue_depth)
        self.peak_pending_cost = max(self.peak_pending_cost, self.pending_cost)

    def note_dequeued(self, cost: int) -> None:
        self.queue_depth -= 1
        self.pending_cost -= cost

    def note_worker_busy(self, delta: int) -> None:
        self.workers_busy += delta
        self.peak_workers_busy = max(self.peak_workers_busy, self.workers_busy)

    # ------------------------------------------------------------ snapshot
    def utilisation(self) -> float:
        if self.workers_total <= 0:
            return 0.0
        return self.workers_busy / self.workers_total

    def snapshot(
        self,
        cache_stats: Optional[Dict[str, int]] = None,
        health: Optional[Dict[str, Any]] = None,
        clients: Optional[Dict[str, Dict[str, int]]] = None,
    ) -> Dict[str, Any]:
        """The schema-v3 JSON document archived by CI and the perf harness.

        ``health`` is the manager's degradation report (see
        :meth:`repro.service.manager.JobManager.health`); a snapshot taken
        without one reports a healthy service.  ``clients`` is the
        fair-scheduler ledger (per-client weight, served cost/units and
        backlog, see
        :meth:`repro.service.fairness.DeficitRoundRobinQueue.clients_dict`).
        """
        document: Dict[str, Any] = {
            "schema_version": METRICS_SCHEMA_VERSION,
            "kind": METRICS_KIND,
        }
        for section, names in _SECTION_FIELDS.items():
            document[section] = {name: getattr(self, name) for name in names}
        document["workers"]["utilisation"] = self.utilisation()
        document["cache"] = dict(cache_stats) if cache_stats else {}
        document["clients"] = (
            {name: dict(body) for name, body in clients.items()}
            if clients is not None
            else {}
        )
        document["health"] = (
            dict(health)
            if health is not None
            else {"degraded": False, "components": {}}
        )
        if self.extra:
            document["extra"] = dict(self.extra)
        return document

    def as_dict(self) -> Dict[str, Any]:
        return {
            spec.name: getattr(self, spec.name)
            for spec in fields(self)
            if spec.name != "extra"
        }


def validate_metrics_snapshot(document: Any) -> None:
    """Raise :class:`MetricsSchemaError` unless ``document`` matches."""
    if not isinstance(document, dict):
        raise MetricsSchemaError(
            f"snapshot must be an object, got {type(document).__name__}"
        )
    if document.get("kind") != METRICS_KIND:
        raise MetricsSchemaError(f"snapshot has kind {document.get('kind')!r}")
    if document.get("schema_version") != METRICS_SCHEMA_VERSION:
        raise MetricsSchemaError(
            f"unsupported schema_version {document.get('schema_version')!r}"
        )
    for section, names in _SECTION_FIELDS.items():
        body = document.get(section)
        if not isinstance(body, dict):
            raise MetricsSchemaError(f"snapshot is missing section {section!r}")
        for name in names:
            if name not in body:
                raise MetricsSchemaError(
                    f"snapshot section {section!r} is missing field {name!r}"
                )
    if "cache" not in document:
        raise MetricsSchemaError("snapshot is missing section 'cache'")
    if not isinstance(document.get("clients"), dict):
        raise MetricsSchemaError(
            "snapshot is missing the 'clients' fair-scheduling section"
        )
    health = document.get("health")
    if not isinstance(health, dict) or "degraded" not in health:
        raise MetricsSchemaError(
            "snapshot is missing a 'health' section with a 'degraded' flag"
        )
