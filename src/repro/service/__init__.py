"""Simulation-as-a-service: job manager + content-addressed result cache.

This package turns the one-shot experiment API into a long-lived service:

* :mod:`repro.service.manager` -- :class:`JobManager`, the asyncio
  front-end with priority + FIFO scheduling, bounded-cost admission
  control, per-job cancellation and in-flight deduplication over a
  pluggable worker-pool backend.
* :mod:`repro.service.cache` -- :class:`ResultCache`, the
  content-addressed (SHA-256 of the canonical experiment document)
  schema-versioned result store; cache hits replay bit-identically to
  recomputation.  :func:`run_matrix_cached` is the synchronous
  equivalent used by ``repro.api`` wrappers when passed ``cache=``.
* :mod:`repro.service.events` -- the streaming progress events yielded
  by :meth:`JobHandle.events` and their ordering contract.
* :mod:`repro.service.metrics` -- :class:`ServiceMetrics`, queue /
  cache / worker counters rendered as a schema-v1 JSON snapshot.
* :mod:`repro.service.cli` -- the ``python -m repro.service`` front-end,
  including the ``--self-test`` exercise CI runs as a smoke test.
"""

from __future__ import annotations

from repro.service.cache import (
    RESULT_SCHEMA_VERSION,
    CacheError,
    CacheStats,
    ResultCache,
    entry_keys,
    replica_key,
    run_matrix_cached,
)
from repro.service.events import (
    SOURCE_CACHE,
    SOURCE_COMPUTED,
    SOURCE_DEDUPED,
    JobAdmitted,
    JobCancelled,
    JobCompleted,
    JobEvent,
    JobFailed,
    JobProgress,
    ReplicaCompleted,
)
from repro.service.manager import (
    DEFAULT_MAX_PENDING_COST,
    AdmissionError,
    InlinePoolBackend,
    JobCancelledError,
    JobHandle,
    JobManager,
    JobState,
    PoolBackend,
    ProcessPoolBackend,
    job_cost,
    make_backend,
    replica_cost,
)
from repro.service.metrics import (
    METRICS_SCHEMA_VERSION,
    MetricsSchemaError,
    ServiceMetrics,
    validate_metrics_snapshot,
)

__all__ = [
    "AdmissionError",
    "CacheError",
    "CacheStats",
    "DEFAULT_MAX_PENDING_COST",
    "InlinePoolBackend",
    "JobAdmitted",
    "JobCancelled",
    "JobCancelledError",
    "JobCompleted",
    "JobEvent",
    "JobFailed",
    "JobHandle",
    "JobManager",
    "JobProgress",
    "JobState",
    "METRICS_SCHEMA_VERSION",
    "MetricsSchemaError",
    "PoolBackend",
    "ProcessPoolBackend",
    "RESULT_SCHEMA_VERSION",
    "ReplicaCompleted",
    "ResultCache",
    "SOURCE_CACHE",
    "SOURCE_COMPUTED",
    "SOURCE_DEDUPED",
    "ServiceMetrics",
    "entry_keys",
    "job_cost",
    "make_backend",
    "replica_cost",
    "replica_key",
    "run_matrix_cached",
    "validate_metrics_snapshot",
]
