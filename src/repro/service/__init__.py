"""Simulation-as-a-service: job manager + content-addressed result cache.

This package turns the one-shot experiment API into a long-lived service:

* :mod:`repro.service.manager` -- :class:`JobManager`, the asyncio
  front-end with per-client fair scheduling, bounded-cost admission
  control, per-job cancellation, in-flight deduplication, and a
  fault-tolerance layer (transient-failure retries with deterministic
  backoff, per-replica deadlines, worker-crash pool rebuilds, replica
  quarantine, journal-driven crash recovery) over a pluggable
  worker-pool backend.
* :mod:`repro.service.fairness` -- :class:`DeficitRoundRobinQueue`, the
  weighted deficit-round-robin scheduler behind the manager: one
  priority+FIFO lane per client, starvation bounded by construction.
* :mod:`repro.service.server` -- :class:`GatewayServer`, the stdlib
  HTTP/WebSocket network front-end (``POST /v1/jobs``, status, cancel,
  NDJSON/WebSocket event streams, health and metrics), and
  :class:`ServerThread`, its synchronous single-process host; the
  matching blocking client is :class:`repro.client.ServiceClient`.
* :mod:`repro.service.wire` -- the typed, schema-versioned wire messages
  (requests, responses, streamed events) both ends of the gateway speak.
* :mod:`repro.service.cache` -- :class:`ResultCache`, the
  content-addressed (SHA-256 of the canonical experiment document)
  schema-versioned result store; cache hits replay bit-identically to
  recomputation, and disk faults degrade it to memory-only operation
  instead of failing jobs.  :func:`run_matrix_cached` is the synchronous
  equivalent used by ``repro.api`` wrappers when passed ``cache=``.
* :mod:`repro.service.journal` -- :class:`JobJournal`, the append-only,
  fsync'd, CRC-checked job journal behind
  :meth:`JobManager.recover`; torn trailing records are truncated, not
  fatal.
* :mod:`repro.service.faults` -- :class:`FaultPlan`, the deterministic
  fault-injection harness (planned crashes, timeouts, I/O errors at
  named sites) that exercises every recovery path in tests.
* :mod:`repro.service.events` -- the streaming progress events yielded
  by :meth:`JobHandle.events` and their ordering contract.
* :mod:`repro.service.metrics` -- :class:`ServiceMetrics`, queue /
  cache / fault / health / per-client counters rendered as a schema-v3
  JSON snapshot.
* :mod:`repro.service.cli` -- the ``python -m repro.service`` front-end,
  including the ``--self-test`` exercise (with its kill-and-recover
  pass) CI runs as a smoke test.
"""

from __future__ import annotations

from repro.service.cache import (
    RESULT_SCHEMA_VERSION,
    CacheError,
    CacheStats,
    ResultCache,
    entry_keys,
    replica_key,
    run_matrix_cached,
)
from repro.service.events import (
    SOURCE_CACHE,
    SOURCE_COMPUTED,
    SOURCE_DEDUPED,
    JobAdmitted,
    JobCancelled,
    JobCompleted,
    JobEvent,
    JobFailed,
    JobProgress,
    ReplicaCompleted,
    ReplicaFailed,
    ReplicaRetried,
    ServiceDegraded,
)
from repro.service.fairness import (
    DEFAULT_CLIENT_ID,
    DEFAULT_WEIGHT,
    DeficitRoundRobinQueue,
)
from repro.service.faults import (
    FAULT_KINDS,
    FAULT_SITES,
    Fault,
    FaultingPoolBackend,
    FaultPlan,
    InjectedPermanentError,
    InjectedWorkerCrash,
)
from repro.service.journal import (
    JOURNAL_SCHEMA_VERSION,
    JobJournal,
    JournaledJob,
    JournalError,
)
from repro.service.manager import (
    DEFAULT_MAX_ATTEMPTS,
    DEFAULT_MAX_PENDING_COST,
    AdmissionError,
    InlinePoolBackend,
    JobCancelledError,
    JobHandle,
    JobManager,
    JobState,
    PoolBackend,
    ProcessPoolBackend,
    WorkerCrashError,
    is_transient,
    job_cost,
    make_backend,
    replica_cost,
)
from repro.service.metrics import (
    METRICS_SCHEMA_VERSION,
    MetricsSchemaError,
    ServiceMetrics,
    validate_metrics_snapshot,
)
from repro.service.server import GatewayServer, ServerThread
from repro.service.wire import (
    WIRE_SCHEMA_VERSION,
    CancelResponse,
    JobStatus,
    SubmitAccepted,
    SubmitRejected,
    SubmitRequest,
    WireError,
    error_to_wire,
    event_from_wire,
    event_to_wire,
)

__all__ = [
    "AdmissionError",
    "CacheError",
    "CacheStats",
    "CancelResponse",
    "DEFAULT_CLIENT_ID",
    "DEFAULT_MAX_ATTEMPTS",
    "DEFAULT_MAX_PENDING_COST",
    "DEFAULT_WEIGHT",
    "DeficitRoundRobinQueue",
    "FAULT_KINDS",
    "FAULT_SITES",
    "Fault",
    "FaultPlan",
    "FaultingPoolBackend",
    "GatewayServer",
    "InjectedPermanentError",
    "InjectedWorkerCrash",
    "InlinePoolBackend",
    "JOURNAL_SCHEMA_VERSION",
    "JobAdmitted",
    "JobCancelled",
    "JobCancelledError",
    "JobCompleted",
    "JobEvent",
    "JobFailed",
    "JobHandle",
    "JobJournal",
    "JobManager",
    "JobProgress",
    "JobState",
    "JobStatus",
    "JournalError",
    "JournaledJob",
    "METRICS_SCHEMA_VERSION",
    "MetricsSchemaError",
    "PoolBackend",
    "ProcessPoolBackend",
    "RESULT_SCHEMA_VERSION",
    "ReplicaCompleted",
    "ReplicaFailed",
    "ReplicaRetried",
    "ResultCache",
    "SOURCE_CACHE",
    "SOURCE_COMPUTED",
    "SOURCE_DEDUPED",
    "ServerThread",
    "ServiceDegraded",
    "ServiceMetrics",
    "SubmitAccepted",
    "SubmitRejected",
    "SubmitRequest",
    "WIRE_SCHEMA_VERSION",
    "WireError",
    "WorkerCrashError",
    "entry_keys",
    "error_to_wire",
    "event_from_wire",
    "event_to_wire",
    "is_transient",
    "job_cost",
    "make_backend",
    "replica_cost",
    "replica_key",
    "run_matrix_cached",
    "validate_metrics_snapshot",
]
