"""Streaming progress events yielded by :meth:`JobHandle.events`.

Every submitted job streams a strictly-ordered event sequence:

1. exactly one :class:`JobAdmitted` first;
2. zero or more ``(`` :class:`ReplicaCompleted` ``,`` :class:`JobProgress`
   ``)`` pairs, one pair per finished replica, in completion order (the
   progress event carries the partial statistics so far);
3. exactly one terminal event last -- :class:`JobCompleted` with the
   merged result, :class:`JobCancelled`, or :class:`JobFailed`.

After the terminal event the stream ends; a cancelled job emits nothing
further even if shared replicas finish later for other jobs' benefit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.system.results import RunResult

#: How a finished replica's result was obtained.
SOURCE_COMPUTED = "computed"
SOURCE_CACHE = "cache"
SOURCE_DEDUPED = "deduped"


@dataclass(frozen=True)
class JobEvent:
    """Base of every streamed event; ``terminal`` ends the stream."""

    job_id: str

    terminal = False


@dataclass(frozen=True)
class JobAdmitted(JobEvent):
    """The job passed admission control and its replicas were enqueued."""

    label: str
    total_replicas: int
    priority: int


@dataclass(frozen=True)
class ReplicaCompleted(JobEvent):
    """One replica finished; ``source`` says whether it was simulated,
    replayed from the result cache, or joined onto another job's in-flight
    computation of the identical replica."""

    replica_index: int
    source: str
    runtime_ns: int


@dataclass(frozen=True)
class JobProgress(JobEvent):
    """Partial statistics after each replica: completion count and the
    minimum runtime / total misses over the replicas finished so far."""

    completed: int
    total: int
    best_runtime_ns: int
    misses: int


@dataclass(frozen=True)
class JobCompleted(JobEvent):
    """Terminal: every replica finished; ``result`` is the merged minimum."""

    result: RunResult

    terminal = True


@dataclass(frozen=True)
class JobCancelled(JobEvent):
    """Terminal: the job was cancelled before all replicas finished."""

    terminal = True


@dataclass(frozen=True)
class JobFailed(JobEvent):
    """Terminal: a replica raised; ``error`` carries the repr."""

    error: str

    terminal = True


def describe(event: JobEvent) -> str:
    """One human-readable line per event (the CLI's stream format)."""
    if isinstance(event, JobAdmitted):
        return (
            f"[{event.job_id}] admitted {event.label} "
            f"({event.total_replicas} replica(s), priority {event.priority})"
        )
    if isinstance(event, ReplicaCompleted):
        return (
            f"[{event.job_id}] replica {event.replica_index} {event.source} "
            f"runtime={event.runtime_ns} ns"
        )
    if isinstance(event, JobProgress):
        return (
            f"[{event.job_id}] progress {event.completed}/{event.total} "
            f"best_runtime={event.best_runtime_ns} ns misses={event.misses}"
        )
    if isinstance(event, JobCompleted):
        return (
            f"[{event.job_id}] completed runtime={event.result.runtime_ns} ns "
            f"over {event.result.replicas} replica(s)"
        )
    if isinstance(event, JobCancelled):
        return f"[{event.job_id}] cancelled"
    if isinstance(event, JobFailed):
        return f"[{event.job_id}] failed: {event.error}"
    return f"[{event.job_id}] {event!r}"
