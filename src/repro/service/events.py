"""Streaming progress events yielded by :meth:`JobHandle.events`.

Every submitted job streams a strictly-ordered event sequence:

1. exactly one :class:`JobAdmitted` first;
2. zero or more ``(`` :class:`ReplicaCompleted` ``,`` :class:`JobProgress`
   ``)`` pairs, one pair per finished replica, in completion order (the
   progress event carries the partial statistics so far);
3. exactly one terminal event last -- :class:`JobCompleted` with the
   merged result, :class:`JobCancelled`, or :class:`JobFailed`.

*Informational* events -- :class:`ReplicaRetried`, :class:`ReplicaFailed`
and :class:`ServiceDegraded` (all with ``informational = True``) -- may
appear anywhere between the admitted and terminal events without breaking
the pair structure above: contract checkers filter them out first.  A
retried replica emits one :class:`ReplicaRetried` per re-attempt; a
replica whose attempt budget is exhausted emits one :class:`ReplicaFailed`
(quarantine) instead of a completion pair.

After the terminal event the stream ends; a cancelled job emits nothing
further even if shared replicas finish later for other jobs' benefit.

One degenerate stream is legal: a job cancelled **before admission**
(possible through :meth:`JobManager.submit_async`, where the network
gateway registers the job id before the admission decision) emits
exactly one event -- the terminal :class:`JobCancelled` -- and no
``JobAdmitted``, because the job never entered the queue.  Contract
checkers accept a single-event stream iff it is a lone ``JobCancelled``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.system.results import RunResult

#: How a finished replica's result was obtained.
SOURCE_COMPUTED = "computed"
SOURCE_CACHE = "cache"
SOURCE_DEDUPED = "deduped"


@dataclass(frozen=True)
class JobEvent:
    """Base of every streamed event; ``terminal`` ends the stream.

    ``informational`` marks events that may interleave freely between the
    admitted and terminal events (retries, quarantines, degradation
    notices) -- ordering checkers filter them before pairing replica and
    progress events.
    """

    job_id: str

    terminal = False
    informational = False


@dataclass(frozen=True)
class JobAdmitted(JobEvent):
    """The job passed admission control and its replicas were enqueued."""

    label: str
    total_replicas: int
    priority: int


@dataclass(frozen=True)
class ReplicaCompleted(JobEvent):
    """One replica finished; ``source`` says whether it was simulated,
    replayed from the result cache, or joined onto another job's in-flight
    computation of the identical replica."""

    replica_index: int
    source: str
    runtime_ns: int


@dataclass(frozen=True)
class ReplicaRetried(JobEvent):
    """Informational: a transient replica failure triggered a retry.

    ``attempt`` is the attempt that just failed (1-based); the replica is
    re-run after ``backoff_s`` seconds, up to the manager's attempt
    budget."""

    replica_index: int
    attempt: int
    error: str
    backoff_s: float

    informational = True


@dataclass(frozen=True)
class ReplicaFailed(JobEvent):
    """Informational: a replica exhausted its attempt budget (or failed
    permanently) and was quarantined; sibling replicas keep running and
    the job completes with the replicas that did finish."""

    replica_index: int
    attempts: int
    error: str
    permanent: bool

    informational = True


@dataclass(frozen=True)
class ServiceDegraded(JobEvent):
    """Informational: a service component entered degraded mode (e.g. the
    result cache fell back to memory-only after a disk fault).  Emitted at
    most once per component, on the stream of the job whose operation
    detected the condition."""

    component: str
    reason: str

    informational = True


@dataclass(frozen=True)
class JobProgress(JobEvent):
    """Partial statistics after each replica: completion count and the
    minimum runtime / total misses over the replicas finished so far."""

    completed: int
    total: int
    best_runtime_ns: int
    misses: int


@dataclass(frozen=True)
class JobCompleted(JobEvent):
    """Terminal: every replica finished; ``result`` is the merged minimum."""

    result: RunResult

    terminal = True


@dataclass(frozen=True)
class JobCancelled(JobEvent):
    """Terminal: the job was cancelled before all replicas finished."""

    terminal = True


@dataclass(frozen=True)
class JobFailed(JobEvent):
    """Terminal: a replica raised; ``error`` carries the repr."""

    error: str

    terminal = True


def describe(event: JobEvent) -> str:
    """One human-readable line per event (the CLI's stream format)."""
    if isinstance(event, JobAdmitted):
        return (
            f"[{event.job_id}] admitted {event.label} "
            f"({event.total_replicas} replica(s), priority {event.priority})"
        )
    if isinstance(event, ReplicaCompleted):
        return (
            f"[{event.job_id}] replica {event.replica_index} {event.source} "
            f"runtime={event.runtime_ns} ns"
        )
    if isinstance(event, ReplicaRetried):
        return (
            f"[{event.job_id}] replica {event.replica_index} retrying after "
            f"attempt {event.attempt} failed ({event.error}); "
            f"backoff {event.backoff_s:.2f}s"
        )
    if isinstance(event, ReplicaFailed):
        kind = "permanent failure" if event.permanent else "attempts exhausted"
        return (
            f"[{event.job_id}] replica {event.replica_index} quarantined "
            f"after {event.attempts} attempt(s) ({kind}): {event.error}"
        )
    if isinstance(event, ServiceDegraded):
        return f"[{event.job_id}] DEGRADED {event.component}: {event.reason}"
    if isinstance(event, JobProgress):
        return (
            f"[{event.job_id}] progress {event.completed}/{event.total} "
            f"best_runtime={event.best_runtime_ns} ns misses={event.misses}"
        )
    if isinstance(event, JobCompleted):
        return (
            f"[{event.job_id}] completed runtime={event.result.runtime_ns} ns "
            f"over {event.result.replicas} replica(s)"
        )
    if isinstance(event, JobCancelled):
        return f"[{event.job_id}] cancelled"
    if isinstance(event, JobFailed):
        return f"[{event.job_id}] failed: {event.error}"
    return f"[{event.job_id}] {event!r}"
