"""Typed wire messages of the network gateway (`repro.service.server`).

Every request and response that crosses the HTTP/WebSocket boundary is a
frozen dataclass here with a ``to_wire()`` / ``from_wire()`` pair, so both
ends of the connection share one schema-versioned vocabulary instead of
hand-rolled dictionaries.  The envelope convention matches the repo's other
JSON artifacts (cache entries, journal records, metrics snapshots): every
document carries ``wire_version`` and a ``kind`` discriminator, and
decoding validates both before touching the payload.

Hand-rolled dictionaries are **deliberately rejected**: a document without
the envelope raises :class:`WireError` with a pointed message naming the
typed class to use, so callers migrating from the pre-gateway dict idiom
get an actionable error instead of a silent schema drift.

Job events stream over the wire through :func:`event_to_wire` /
:func:`event_from_wire`, which round-trip every
:class:`~repro.service.events.JobEvent` subclass bit-identically
(``JobCompleted`` results ride as the same JSON payload the result cache
stores, so a streamed result decodes exactly like a cached one).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping, Optional, Type

from repro.api.spec import ExperimentSpec, ExperimentSpecError
from repro.service.cache import payload_to_result, result_to_payload
from repro.service.events import (
    JobAdmitted,
    JobCancelled,
    JobCompleted,
    JobEvent,
    JobFailed,
    JobProgress,
    ReplicaCompleted,
    ReplicaFailed,
    ReplicaRetried,
    ServiceDegraded,
)
from repro.service.fairness import DEFAULT_CLIENT_ID
from repro.system.results import RunResult

#: Version of the gateway wire format (bump on incompatible change).
WIRE_SCHEMA_VERSION = 1

#: ``kind`` discriminators of the wire documents.
KIND_SUBMIT_REQUEST = "repro.service.submit-request"
KIND_SUBMIT_ACCEPTED = "repro.service.submit-accepted"
KIND_SUBMIT_REJECTED = "repro.service.submit-rejected"
KIND_JOB_STATUS = "repro.service.job-status"
KIND_CANCEL_RESPONSE = "repro.service.cancel-response"
KIND_EVENT = "repro.service.event"
KIND_ERROR = "repro.service.error"


class WireError(ValueError):
    """A wire document does not match the typed schema."""


def _check_envelope(
    document: Any, expected_kind: str, type_name: str
) -> Mapping[str, Any]:
    """Validate the ``wire_version``/``kind`` envelope; returns the document."""
    if not isinstance(document, Mapping):
        raise WireError(
            f"wire document must be an object, got {type(document).__name__}"
        )
    if "wire_version" not in document or "kind" not in document:
        raise WireError(
            "hand-rolled request dictionaries are not accepted by the "
            f"gateway: build a repro.service.wire.{type_name} and send "
            f"its .to_wire() document (missing the wire_version/kind "
            f"envelope in {sorted(document)!r})"
        )
    if document["wire_version"] != WIRE_SCHEMA_VERSION:
        raise WireError(
            f"unsupported wire_version {document['wire_version']!r} "
            f"(this build speaks {WIRE_SCHEMA_VERSION})"
        )
    if document["kind"] != expected_kind:
        raise WireError(
            f"wire document has kind {document['kind']!r}, "
            f"expected {expected_kind!r}"
        )
    return document


def _envelope(kind: str) -> Dict[str, Any]:
    return {"wire_version": WIRE_SCHEMA_VERSION, "kind": kind}


# ---------------------------------------------------------------- requests
@dataclass(frozen=True)
class SubmitRequest:
    """``POST /v1/jobs``: one experiment spec plus scheduling parameters.

    ``client_id`` names the deficit-round-robin lane the job is scheduled
    in (see :mod:`repro.service.fairness`); ``priority`` orders jobs
    *within* a lane (lower runs earlier, ties FIFO).
    """

    spec: ExperimentSpec
    priority: int = 0
    client_id: str = DEFAULT_CLIENT_ID

    def to_wire(self) -> Dict[str, Any]:
        document = _envelope(KIND_SUBMIT_REQUEST)
        document["spec"] = self.spec.as_document()
        document["priority"] = self.priority
        document["client"] = self.client_id
        return document

    @classmethod
    def from_wire(cls, document: Any) -> "SubmitRequest":
        body = _check_envelope(document, KIND_SUBMIT_REQUEST, "SubmitRequest")
        if "spec" not in body:
            raise WireError("submit request is missing its 'spec' document")
        try:
            spec = ExperimentSpec.from_document(body["spec"])
        except ExperimentSpecError as error:
            raise WireError(f"invalid experiment spec: {error}") from None
        priority = body.get("priority", 0)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise WireError(f"priority must be an integer, got {priority!r}")
        client = body.get("client", DEFAULT_CLIENT_ID)
        if not isinstance(client, str) or not client:
            raise WireError(f"client must be a non-empty string, got {client!r}")
        return cls(spec=spec, priority=priority, client_id=client)


# --------------------------------------------------------------- responses
@dataclass(frozen=True)
class SubmitAccepted:
    """``202``: the job passed admission and its replicas are queued."""

    job_id: str
    label: str
    total_replicas: int
    priority: int
    client_id: str

    def to_wire(self) -> Dict[str, Any]:
        document = _envelope(KIND_SUBMIT_ACCEPTED)
        document.update(
            job_id=self.job_id,
            label=self.label,
            total_replicas=self.total_replicas,
            priority=self.priority,
            client=self.client_id,
        )
        return document

    @classmethod
    def from_wire(cls, document: Any) -> "SubmitAccepted":
        body = _check_envelope(document, KIND_SUBMIT_ACCEPTED, "SubmitAccepted")
        try:
            return cls(
                job_id=body["job_id"],
                label=body["label"],
                total_replicas=body["total_replicas"],
                priority=body["priority"],
                client_id=body["client"],
            )
        except KeyError as error:
            raise WireError(f"submit acceptance is missing field {error}") from None


@dataclass(frozen=True)
class SubmitRejected:
    """``429``: admission control rejected the job; retry after a delay.

    ``retry_after_s`` is the manager's cost-rate estimate of when the
    pending backlog will have drained enough to admit this job (the same
    number the HTTP layer rounds up into its ``Retry-After`` header).
    """

    pending_cost: int
    budget: int
    retry_after_s: float

    def to_wire(self) -> Dict[str, Any]:
        document = _envelope(KIND_SUBMIT_REJECTED)
        document.update(
            pending_cost=self.pending_cost,
            budget=self.budget,
            retry_after_s=self.retry_after_s,
        )
        return document

    @classmethod
    def from_wire(cls, document: Any) -> "SubmitRejected":
        body = _check_envelope(document, KIND_SUBMIT_REJECTED, "SubmitRejected")
        try:
            return cls(
                pending_cost=body["pending_cost"],
                budget=body["budget"],
                retry_after_s=body["retry_after_s"],
            )
        except KeyError as error:
            raise WireError(f"submit rejection is missing field {error}") from None


@dataclass(frozen=True)
class JobStatus:
    """``GET /v1/jobs/{id}``: lifecycle state plus the result when done.

    ``result`` is present iff ``state == "completed"``; ``error`` carries
    the failure (or cancellation) detail for terminal non-success states.
    """

    job_id: str
    state: str
    label: str
    client_id: str
    priority: int
    completed_replicas: int
    total_replicas: int
    result: Optional[RunResult] = None
    error: Optional[str] = None

    def to_wire(self) -> Dict[str, Any]:
        document = _envelope(KIND_JOB_STATUS)
        document.update(
            job_id=self.job_id,
            state=self.state,
            label=self.label,
            client=self.client_id,
            priority=self.priority,
            completed_replicas=self.completed_replicas,
            total_replicas=self.total_replicas,
            result=(
                result_to_payload(self.result) if self.result is not None else None
            ),
            error=self.error,
        )
        return document

    @classmethod
    def from_wire(cls, document: Any) -> "JobStatus":
        body = _check_envelope(document, KIND_JOB_STATUS, "JobStatus")
        try:
            payload = body["result"]
            return cls(
                job_id=body["job_id"],
                state=body["state"],
                label=body["label"],
                client_id=body["client"],
                priority=body["priority"],
                completed_replicas=body["completed_replicas"],
                total_replicas=body["total_replicas"],
                result=payload_to_result(payload) if payload is not None else None,
                error=body.get("error"),
            )
        except KeyError as error:
            raise WireError(f"job status is missing field {error}") from None


@dataclass(frozen=True)
class CancelResponse:
    """``DELETE /v1/jobs/{id}``: whether the cancel changed anything.

    ``cancelled`` is ``True`` iff the job was still live when the request
    arrived; ``state`` is the job's state *after* the request either way.
    """

    job_id: str
    cancelled: bool
    state: str

    def to_wire(self) -> Dict[str, Any]:
        document = _envelope(KIND_CANCEL_RESPONSE)
        document.update(
            job_id=self.job_id, cancelled=self.cancelled, state=self.state
        )
        return document

    @classmethod
    def from_wire(cls, document: Any) -> "CancelResponse":
        body = _check_envelope(document, KIND_CANCEL_RESPONSE, "CancelResponse")
        try:
            return cls(
                job_id=body["job_id"],
                cancelled=body["cancelled"],
                state=body["state"],
            )
        except KeyError as error:
            raise WireError(f"cancel response is missing field {error}") from None


# ------------------------------------------------------------------ errors
def error_to_wire(status: int, message: str) -> Dict[str, Any]:
    """The gateway's generic error body (4xx/5xx responses)."""
    document = _envelope(KIND_ERROR)
    document.update(status=status, error=message)
    return document


# ------------------------------------------------------------------ events
#: Every streamable event type, by its wire name.
_EVENT_TYPES: Dict[str, Type[JobEvent]] = {
    cls.__name__: cls
    for cls in (
        JobAdmitted,
        ReplicaCompleted,
        ReplicaRetried,
        ReplicaFailed,
        ServiceDegraded,
        JobProgress,
        JobCompleted,
        JobCancelled,
        JobFailed,
    )
}


def event_to_wire(event: JobEvent) -> Dict[str, Any]:
    """One job event as its NDJSON/WebSocket wire document."""
    document = _envelope(KIND_EVENT)
    document["event"] = type(event).__name__
    document["terminal"] = event.terminal
    for field in fields(event):
        value = getattr(event, field.name)
        document[field.name] = (
            result_to_payload(value) if isinstance(value, RunResult) else value
        )
    return document


def event_from_wire(document: Any) -> JobEvent:
    """Rebuild the typed event from :func:`event_to_wire` output."""
    body = _check_envelope(document, KIND_EVENT, "event_to_wire")
    name = body.get("event")
    event_type = _EVENT_TYPES.get(name)
    if event_type is None:
        raise WireError(f"unknown event type {name!r}")
    kwargs: Dict[str, Any] = {}
    for field in fields(event_type):
        if field.name not in body:
            raise WireError(f"{name} event is missing field {field.name!r}")
        value = body[field.name]
        if field.name == "result" and event_type is JobCompleted:
            value = payload_to_result(value)
        kwargs[field.name] = value
    return event_type(**kwargs)
