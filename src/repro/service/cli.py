"""Command-line front-end of the simulation service.

::

    python -m repro.service oltp,protocol=diropt,scale=0.2 dss,priority=1
    python -m repro.service --jobs 4 --cache-dir .repro-cache oltp dss
    python -m repro.service --self-test --metrics-out service-metrics.json

Each positional argument is one experiment request: a workload name
followed by comma-separated ``key=value`` settings.  ``protocol``,
``network``, ``scale`` and ``priority`` are recognised directly; any other
key is passed through as a :class:`~repro.system.config.SystemConfig`
override (``slack=2``, ``perturbation_replicas=3``, ...).  Requests are
validated eagerly, streamed as they progress, and deduplicated through
the shared result cache.

``--self-test`` runs a deterministic end-to-end exercise of the service
(overlapping sweeps from two clients, cache replay, event-ordering and
bit-identity checks, and a kill-and-recover pass that SIGKILLs a pool
worker mid-sweep and resumes the job from the journal) and exits non-zero
on any violation; CI runs it as a smoke test and archives the resulting
metrics snapshot.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.api.spec import ExperimentSpec, ExperimentSpecError
from repro.service.cache import ResultCache
from repro.service.events import (
    SOURCE_COMPUTED,
    JobAdmitted,
    JobCompleted,
    JobEvent,
    JobProgress,
    ReplicaCompleted,
    describe,
)
from repro.service.journal import JobJournal
from repro.service.manager import (
    DEFAULT_MAX_ATTEMPTS,
    DEFAULT_MAX_PENDING_COST,
    AdmissionError,
    JobManager,
    ProcessPoolBackend,
)
from repro.service.metrics import validate_metrics_snapshot

_DIRECT_KEYS = ("workload", "protocol", "network")


def _coerce(value: str) -> Any:
    """``key=value`` strings into numbers/bools where they look like one."""
    lowered = value.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for kind in (int, float):
        try:
            return kind(value)
        except ValueError:
            continue
    return value


def parse_request(
    text: str, default_scale: Optional[float] = None
) -> Tuple[ExperimentSpec, int]:
    """One CLI positional into ``(spec, priority)``.

    Grammar: ``workload[,key=value]...`` -- e.g.
    ``oltp,protocol=diropt,scale=0.2,priority=1,slack=2``.  A request
    without an inline ``scale=`` falls back to ``default_scale`` (the
    ``--scale`` flag) when one is given.
    """
    named: Dict[str, str] = {}
    workload: Optional[str] = None
    overrides: Dict[str, Any] = {}
    priority = 0
    for part in filter(None, (piece.strip() for piece in text.split(","))):
        if "=" not in part:
            if workload is not None:
                raise ExperimentSpecError(
                    f"request {text!r} names two workloads "
                    f"({workload!r} and {part!r})"
                )
            workload = part
            continue
        key, _, value = part.partition("=")
        key = key.strip()
        value = value.strip()
        if key == "priority":
            priority = int(value)
        elif key == "scale":
            overrides["scale"] = float(value)
        elif key in _DIRECT_KEYS:
            named[key] = value
        else:
            overrides[key] = _coerce(value)
    workload = named.pop("workload", workload)
    if workload is None:
        raise ExperimentSpecError(f"request {text!r} does not name a workload")
    if default_scale is not None:
        overrides.setdefault("scale", default_scale)
    spec = ExperimentSpec.make(workload, **named, **overrides)
    return spec, priority


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Run experiment requests through the simulation service.",
    )
    parser.add_argument(
        "requests",
        nargs="*",
        metavar="REQUEST",
        help="workload[,key=value]... e.g. oltp,protocol=diropt,scale=0.2",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (1 serial, 0 = one per CPU; default 1)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="persist the result cache under DIR (default: memory only)",
    )
    parser.add_argument(
        "--memory-entries",
        type=int,
        default=512,
        metavar="N",
        help="in-memory LRU size of the result cache (default 512)",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=None,
        metavar="COST",
        help="admission budget in cost units (0 disables admission control)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write the schema-v2 service metrics snapshot to PATH",
    )
    parser.add_argument(
        "--journal-dir",
        metavar="DIR",
        default=None,
        help="keep a crash-safe job journal under DIR; on startup, jobs the "
        "journal records as unfinished are recovered and completed first",
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=DEFAULT_MAX_ATTEMPTS,
        metavar="N",
        help="attempt budget per replica for transient failures "
        f"(default {DEFAULT_MAX_ATTEMPTS})",
    )
    parser.add_argument(
        "--replica-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-attempt replica deadline; overruns count as transient "
        "failures and retry (default: no deadline)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="default reference-stream scale for requests without an "
        "inline scale= (and for --self-test, where it defaults to 0.05)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the event stream"
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run the deterministic service exercise and exit non-zero on failure",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.self_test:
        if args.requests:
            parser.error("--self-test takes no REQUEST arguments")
        return asyncio.run(_self_test(args))
    if not args.requests:
        parser.error("no REQUEST given (or use --self-test)")
    try:
        requests = [parse_request(text, args.scale) for text in args.requests]
    except (ExperimentSpecError, ValueError) as error:
        parser.error(str(error))
    return asyncio.run(_serve(requests, args))


def _make_manager(args: argparse.Namespace) -> JobManager:
    cache = ResultCache(args.cache_dir, memory_entries=args.memory_entries)
    budget: Optional[int]
    if args.budget is None:
        budget = DEFAULT_MAX_PENDING_COST
    elif args.budget <= 0:
        budget = None
    else:
        budget = args.budget
    journal = None
    if args.journal_dir:
        journal = JobJournal(Path(args.journal_dir) / "journal.jsonl")
    return JobManager(
        jobs=args.jobs,
        cache=cache,
        max_pending_cost=budget,
        journal=journal,
        max_attempts=args.max_attempts,
        replica_timeout=args.replica_timeout,
    )


async def _pump(handle: Any, quiet: bool) -> List[JobEvent]:
    events = []
    async for event in handle.events():
        events.append(event)
        if not quiet:
            print(describe(event))
    return events


def _finish_metrics(manager: JobManager, args: argparse.Namespace) -> None:
    snapshot = manager.snapshot()
    validate_metrics_snapshot(snapshot)
    if args.metrics_out:
        path = Path(args.metrics_out)
        path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
        print(f"wrote metrics snapshot to {path}")
    replicas = snapshot["replicas"]
    print(
        "service: computed={computed} cached={cached} deduped={deduped} "
        "peak_queue={peak}".format(
            computed=replicas["replicas_computed"],
            cached=replicas["replicas_from_cache"],
            deduped=replicas["replicas_deduped"],
            peak=snapshot["queue"]["peak_queue_depth"],
        )
    )


async def _serve(
    requests: Sequence[Tuple[ExperimentSpec, int]], args: argparse.Namespace
) -> int:
    manager = _make_manager(args)
    failures = 0
    async with manager:
        handles = manager.recover()
        for handle in handles:
            print(f"recovered {handle.job_id} {handle.spec.label} from the journal")
        for spec, priority in requests:
            try:
                handles.append(manager.submit(spec, priority=priority))
            except AdmissionError as error:
                failures += 1
                print(f"rejected {spec.label}: {error}")
        pumps = [
            asyncio.create_task(_pump(handle, args.quiet)) for handle in handles
        ]
        await manager.drain()
        if pumps:
            await asyncio.gather(*pumps)
        for handle in handles:
            try:
                result = await handle.result()
            except Exception as error:
                failures += 1
                print(f"{handle.job_id} {handle.spec.label}: {error}")
                continue
            print(f"{handle.job_id} {handle.spec.label}: {result.summary()}")
    if manager.journal is not None:
        manager.journal.close()
    _finish_metrics(manager, args)
    return 1 if failures else 0


# -------------------------------------------------------------- self-test
def _check(condition: bool, message: str, problems: List[str]) -> None:
    if not condition:
        problems.append(message)


def _check_stream(events: List[JobEvent], problems: List[str]) -> None:
    """Assert the ordering contract of :mod:`repro.service.events`.

    Informational events (retries, quarantines, degradation notices) may
    interleave anywhere mid-stream, so they are filtered out before the
    replica/progress pair structure is checked.
    """
    label = events[0].job_id if events else "<empty>"
    if events:
        _check(
            not events[0].informational and not events[-1].informational,
            f"{label}: stream starts or ends with an informational event",
            problems,
        )
    events = [event for event in events if not event.informational]
    _check(len(events) >= 2, f"{label}: stream has fewer than two events", problems)
    if not events:
        return
    _check(
        isinstance(events[0], JobAdmitted),
        f"{label}: stream does not start with JobAdmitted",
        problems,
    )
    _check(
        events[-1].terminal and isinstance(events[-1], JobCompleted),
        f"{label}: stream does not end with JobCompleted",
        problems,
    )
    middle = events[1:-1]
    _check(
        all(not event.terminal for event in middle),
        f"{label}: terminal event in mid-stream",
        problems,
    )
    pairs = [middle[index : index + 2] for index in range(0, len(middle), 2)]
    completed = 0
    for pair in pairs:
        ok = (
            len(pair) == 2
            and isinstance(pair[0], ReplicaCompleted)
            and isinstance(pair[1], JobProgress)
        )
        _check(ok, f"{label}: replica/progress events not paired", problems)
        if ok:
            completed += 1
            _check(
                pair[1].completed == completed,
                f"{label}: progress count {pair[1].completed} != {completed}",
                problems,
            )


async def _self_test(args: argparse.Namespace) -> int:
    scale = 0.05 if args.scale is None else args.scale
    problems: List[str] = []
    specs = [
        ExperimentSpec.make("oltp", protocol=protocol, scale=scale)
        for protocol in ("ts-snoop", "diropt")
    ]
    cache = ResultCache(args.cache_dir, memory_entries=args.memory_entries)

    # Phase 1: two clients submit overlapping sweeps concurrently.
    manager = JobManager(jobs=1, cache=cache)
    async with manager:
        first = [manager.submit(spec) for spec in specs]
        second = [manager.submit(spec) for spec in specs]
        pumps = [
            asyncio.create_task(_pump(handle, args.quiet))
            for handle in first + second
        ]
        await manager.drain()
        streams = await asyncio.gather(*pumps)
        results_first = [await handle.result() for handle in first]
        results_second = [await handle.result() for handle in second]

    unique_replicas = sum(spec.config().perturbation_replicas for spec in specs)
    _check(
        manager.backend.submissions == unique_replicas,
        f"overlapping sweeps simulated {manager.backend.submissions} "
        f"replicas, expected exactly {unique_replicas}",
        problems,
    )
    _check(
        results_first == results_second,
        "duplicate submissions returned different results",
        problems,
    )
    for events in streams:
        _check_stream(events, problems)
    duplicate_sources = {
        event.source
        for events in streams[len(specs) :]
        for event in events
        if isinstance(event, ReplicaCompleted)
    }
    _check(
        SOURCE_COMPUTED not in duplicate_sources,
        "a duplicate job recomputed a replica instead of joining/replaying",
        problems,
    )

    # Phase 2: a fresh manager replays the sweep purely from the cache.
    replay = JobManager(jobs=1, cache=cache)
    async with replay:
        handles = [replay.submit(spec) for spec in specs]
        drains = [asyncio.create_task(_pump(handle, True)) for handle in handles]
        await replay.drain()
        await asyncio.gather(*drains)
        replayed = [await handle.result() for handle in handles]
    _check(
        replay.backend.submissions == 0,
        f"cached replay submitted {replay.backend.submissions} replicas "
        "to the pool, expected zero simulation work",
        problems,
    )
    _check(
        replayed == results_first,
        "cached replay is not bit-identical to the fresh run",
        problems,
    )

    # Phase 3: kill a pool worker mid-sweep, tear the manager down, and
    # recover the sweep from the journal + cache frontier.
    recovery_stats = await _kill_and_recover(scale, args.quiet, problems)

    manager.metrics.extra["self_test"] = {
        "scale": scale,
        "unique_replicas": unique_replicas,
        "replay_submissions": replay.backend.submissions,
        "kill_and_recover": recovery_stats,
    }
    snapshot = manager.snapshot()
    try:
        validate_metrics_snapshot(snapshot)
    except Exception as error:
        problems.append(f"metrics snapshot failed validation: {error}")
    if args.metrics_out:
        path = Path(args.metrics_out)
        path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")

    for problem in problems:
        print(f"self-test FAILED: {problem}")
    if not problems:
        print(
            f"self-test ok: {unique_replicas} unique replicas computed once, "
            f"{len(specs)} duplicate jobs joined, cached replay bit-identical "
            "with zero pool submissions; kill-and-recover resumed "
            f"{recovery_stats['recovered_jobs']} job(s) recomputing only "
            f"{recovery_stats['recovery_submissions']}/"
            f"{recovery_stats['total_replicas']} replica(s), bit-identical"
        )
    return 1 if problems else 0


async def _kill_and_recover(
    scale: float, quiet: bool, problems: List[str]
) -> Dict[str, Any]:
    """The ``--self-test`` kill-and-recover pass.

    Starts a multi-replica sweep on a one-worker process pool with a disk
    cache and a journal, SIGKILLs the pool worker after the first replica
    lands, abandons the manager mid-sweep (no drain, no terminal record),
    appends a torn half-record to the journal, then recovers in a fresh
    service life: the torn tail must truncate cleanly, only the missing
    replicas may be recomputed, and the merged result must be bit-identical
    to an unfaulted run.
    """
    spec = ExperimentSpec.make(
        "oltp", scale=scale, perturbation_replicas=3
    )
    stats: Dict[str, Any] = {
        "recovered_jobs": 0,
        "total_replicas": spec.config().perturbation_replicas,
        "recovery_submissions": -1,
        "recovered_from_cache": 0,
        "torn_bytes_dropped": 0,
    }

    # The unfaulted reference run (memory-only cache, inline backend).
    baseline_manager = JobManager(jobs=1)
    async with baseline_manager:
        baseline_handle = baseline_manager.submit(spec)
        drain = asyncio.create_task(_pump(baseline_handle, True))
        await baseline_manager.drain()
        await drain
        baseline = await baseline_handle.result()

    with tempfile.TemporaryDirectory(prefix="repro-selftest-") as tmp:
        root = Path(tmp)
        journal_path = root / "journal.jsonl"
        cache = ResultCache(root / "cache")
        journal = JobJournal(journal_path, fsync=False)
        backend = ProcessPoolBackend(max_workers=1)
        crashed = JobManager(
            jobs=1, cache=cache, backend=backend, journal=journal
        )
        await crashed.start()
        crashed.submit(spec)
        deadline = asyncio.get_running_loop().time() + 120.0
        while journal.count("replica-completed") < 1:
            if asyncio.get_running_loop().time() > deadline:
                problems.append(
                    "kill-and-recover: no replica completed within 120s"
                )
                await crashed.aclose()
                journal.close()
                return stats
            await asyncio.sleep(0.005)
        # SIGKILL the pool worker(s), then abandon the manager before it
        # can observe the crash: no retry, no terminal journal record --
        # exactly what a service process dying mid-sweep leaves behind.
        executor = backend.executor
        if executor is not None:
            for process in list((executor._processes or {}).values()):
                process.kill()
        await crashed.aclose()
        journal.close()
        completed_before = journal.count("replica-completed")
        with open(journal_path, "ab") as handle:
            handle.write(b'deadbeef {"type":"replica-comp')

        # A fresh service life over the same journal and cache directory.
        recovered_journal = JobJournal(journal_path, fsync=False)
        stats["torn_bytes_dropped"] = recovered_journal.torn_bytes_dropped
        _check(
            recovered_journal.torn_bytes_dropped > 0,
            "kill-and-recover: the torn journal tail was not truncated",
            problems,
        )
        recovery_cache = ResultCache(root / "cache")
        recovery = JobManager(
            jobs=1, cache=recovery_cache, journal=recovered_journal
        )
        async with recovery:
            handles = recovery.recover()
            stats["recovered_jobs"] = len(handles)
            _check(
                len(handles) == 1,
                f"kill-and-recover: expected 1 unfinished job to recover, "
                f"got {len(handles)}",
                problems,
            )
            pumps = [
                asyncio.create_task(_pump(handle, quiet)) for handle in handles
            ]
            await recovery.drain()
            streams = await asyncio.gather(*pumps)
            results = [await handle.result() for handle in handles]
        recovered_journal.close()

        for events in streams:
            _check_stream(events, problems)
        total = stats["total_replicas"]
        from_cache = recovery.metrics.replicas_from_cache
        submissions = recovery.backend.submissions
        stats["recovery_submissions"] = submissions
        stats["recovered_from_cache"] = from_cache
        _check(
            submissions + from_cache == total,
            f"kill-and-recover: {submissions} recomputed + {from_cache} "
            f"cached != {total} total replicas",
            problems,
        )
        _check(
            from_cache >= completed_before,
            f"kill-and-recover: only {from_cache} replicas came from the "
            f"cache but the journal recorded {completed_before} complete",
            problems,
        )
        _check(
            submissions < total,
            "kill-and-recover: recovery recomputed every replica instead "
            "of resuming from the cache frontier",
            problems,
        )
        _check(
            bool(results) and results[0] == baseline,
            "kill-and-recover: recovered result is not bit-identical to "
            "the unfaulted run",
            problems,
        )
    return stats
