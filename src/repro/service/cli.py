"""Command-line front-end of the simulation service.

::

    python -m repro.service oltp,protocol=diropt,scale=0.2 dss,priority=1
    python -m repro.service oltp,protocol=mesi-dir,consistency=tso
    python -m repro.service --jobs 4 --cache-dir .repro-cache oltp dss
    python -m repro.service --listen 127.0.0.1:8642 --client-weight nightly=2
    python -m repro.service --self-test --metrics-out service-metrics.json
    python -m repro.service --litmus

Each positional argument is one experiment request: a workload name
followed by comma-separated ``key=value`` settings.  ``protocol``,
``network``, ``scale`` and ``priority`` are recognised directly; any
other key becomes a :class:`~repro.system.config.SystemConfig` override
(``slack=2``, ``perturbation_replicas=3``, ...) applied through
:meth:`~repro.api.spec.ExperimentSpec.with_overrides`, so the CLI
surfaces the exact same validation errors as the Python API.  Requests
are validated eagerly, streamed as they progress, and deduplicated
through the shared result cache.

``--listen HOST:PORT`` serves the HTTP/WebSocket gateway
(:mod:`repro.service.server`) instead of running one-shot requests;
``--client-weight CLIENT=N`` gives named clients weighted shares of the
deficit-round-robin scheduler and ``--cache-budget BYTES`` bounds the
on-disk result store (LRU eviction).

``--self-test`` runs a deterministic end-to-end exercise of the service
(overlapping sweeps from two clients, cache replay, event-ordering and
bit-identity checks, a kill-and-recover pass that SIGKILLs a pool worker
mid-sweep and resumes the job from the journal, and a loopback-gateway
pass that drives two weighted HTTP clients through a real socket and
asserts DRR fairness, cache eviction and wire bit-identity) and exits
non-zero on any violation; CI runs it as a smoke test and archives the
resulting metrics snapshot.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.api.spec import ExperimentSpec, ExperimentSpecError
from repro.client import ServiceClient
from repro.service.cache import ResultCache
from repro.service.events import (
    SOURCE_COMPUTED,
    JobAdmitted,
    JobCancelled,
    JobCompleted,
    JobEvent,
    JobProgress,
    ReplicaCompleted,
    describe,
)
from repro.service.journal import JobJournal
from repro.service.manager import (
    DEFAULT_MAX_ATTEMPTS,
    DEFAULT_MAX_PENDING_COST,
    AdmissionError,
    JobManager,
    ProcessPoolBackend,
)
from repro.service.metrics import validate_metrics_snapshot
from repro.service.server import GatewayServer, ServerThread

_DIRECT_KEYS = ("workload", "protocol", "network")


def _coerce(value: str) -> Any:
    """``key=value`` strings into numbers/bools where they look like one."""
    lowered = value.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for kind in (int, float):
        try:
            return kind(value)
        except ValueError:
            continue
    return value


def parse_request(
    text: str, default_scale: Optional[float] = None
) -> Tuple[ExperimentSpec, int]:
    """One CLI positional into ``(spec, priority)``.

    Grammar: ``workload[,key=value]...`` -- e.g.
    ``oltp,protocol=diropt,scale=0.2,priority=1,slack=2``.  A request
    without an inline ``scale=`` falls back to ``default_scale`` (the
    ``--scale`` flag) when one is given.  Config overrides are applied
    through :meth:`ExperimentSpec.with_overrides`, so a bad override
    raises the same :class:`ExperimentSpecError` the Python API would.
    """
    named: Dict[str, str] = {}
    workload: Optional[str] = None
    overrides: Dict[str, Any] = {}
    priority = 0
    for part in filter(None, (piece.strip() for piece in text.split(","))):
        if "=" not in part:
            if workload is not None:
                raise ExperimentSpecError(
                    f"request {text!r} names two workloads "
                    f"({workload!r} and {part!r})"
                )
            workload = part
            continue
        key, _, value = part.partition("=")
        key = key.strip()
        value = value.strip()
        if key == "priority":
            priority = int(value)
        elif key == "scale":
            overrides["scale"] = float(value)
        elif key in _DIRECT_KEYS:
            named[key] = value
        else:
            overrides[key] = _coerce(value)
    workload = named.pop("workload", workload)
    if workload is None:
        raise ExperimentSpecError(f"request {text!r} does not name a workload")
    scale = overrides.pop("scale", default_scale)
    if scale is not None:
        named["scale"] = scale
    spec = ExperimentSpec.make(workload, **named)
    if overrides:
        spec = spec.with_overrides(**overrides)
    return spec, priority


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Run experiment requests through the simulation service.",
    )
    parser.add_argument(
        "requests",
        nargs="*",
        metavar="REQUEST",
        help="workload[,key=value]... e.g. oltp,protocol=diropt,scale=0.2",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (1 serial, 0 = one per CPU; default 1)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="persist the result cache under DIR (default: memory only)",
    )
    parser.add_argument(
        "--cache-budget",
        type=int,
        default=None,
        metavar="BYTES",
        help="bound the on-disk result store to BYTES, evicting least-"
        "recently-used entries (default: unbounded; needs --cache-dir)",
    )
    parser.add_argument(
        "--memory-entries",
        type=int,
        default=512,
        metavar="N",
        help="in-memory LRU size of the result cache (default 512)",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=None,
        metavar="COST",
        help="admission budget in cost units (0 disables admission control)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write the schema-v2 service metrics snapshot to PATH",
    )
    parser.add_argument(
        "--journal-dir",
        metavar="DIR",
        default=None,
        help="keep a crash-safe job journal under DIR; on startup, jobs the "
        "journal records as unfinished are recovered and completed first",
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=DEFAULT_MAX_ATTEMPTS,
        metavar="N",
        help="attempt budget per replica for transient failures "
        f"(default {DEFAULT_MAX_ATTEMPTS})",
    )
    parser.add_argument(
        "--replica-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-attempt replica deadline; overruns count as transient "
        "failures and retry (default: no deadline)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="default reference-stream scale for requests without an "
        "inline scale= (and for --self-test, where it defaults to 0.05)",
    )
    parser.add_argument(
        "--listen",
        metavar="HOST:PORT",
        default=None,
        help="serve the HTTP/WebSocket gateway on HOST:PORT (port 0 picks "
        "an ephemeral port) instead of running one-shot requests",
    )
    parser.add_argument(
        "--client-weight",
        action="append",
        default=[],
        metavar="CLIENT=WEIGHT",
        help="give CLIENT a weighted share of the fair scheduler "
        "(repeatable; unlisted clients get weight 1)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the event stream"
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run the deterministic service exercise and exit non-zero on failure",
    )
    parser.add_argument(
        "--litmus",
        action="store_true",
        help="run the consistency litmus matrix (sb/mp/lb on every "
        "protocol under sc and tso) and exit non-zero if any model "
        "produces a forbidden outcome",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        _parse_weights(args.client_weight)
    except ValueError as error:
        parser.error(str(error))
    if args.litmus:
        if args.requests:
            parser.error("--litmus takes no REQUEST arguments")
        return _litmus()
    if args.self_test:
        if args.requests:
            parser.error("--self-test takes no REQUEST arguments")
        return asyncio.run(_self_test(args))
    if args.listen is not None:
        if args.requests:
            parser.error("--listen takes no REQUEST arguments")
        try:
            _parse_listen(args.listen)
        except ValueError as error:
            parser.error(str(error))
        try:
            return asyncio.run(_listen(args))
        except KeyboardInterrupt:
            return 0
    if not args.requests:
        parser.error("no REQUEST given (or use --listen / --self-test)")
    try:
        requests = [parse_request(text, args.scale) for text in args.requests]
    except (ExperimentSpecError, ValueError) as error:
        parser.error(str(error))
    return asyncio.run(_serve(requests, args))


def _parse_weights(entries: Sequence[str]) -> Dict[str, int]:
    """``CLIENT=WEIGHT`` flags into a weights map (positive ints only)."""
    weights: Dict[str, int] = {}
    for entry in entries:
        name, sep, value = entry.partition("=")
        name = name.strip()
        if not sep or not name:
            raise ValueError(
                f"--client-weight wants CLIENT=WEIGHT, got {entry!r}"
            )
        try:
            weights[name] = int(value)
        except ValueError:
            raise ValueError(
                f"--client-weight {entry!r}: weight must be an integer"
            ) from None
    return weights


def _parse_listen(text: str) -> Tuple[str, int]:
    """``HOST:PORT`` into its parts (port 0 means ephemeral)."""
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise ValueError(f"--listen wants HOST:PORT, got {text!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"--listen {text!r}: port must be an integer") from None
    if not 0 <= port <= 65535:
        raise ValueError(f"--listen {text!r}: port out of range")
    return host, port


def _make_manager(args: argparse.Namespace) -> JobManager:
    cache = ResultCache(
        args.cache_dir,
        memory_entries=args.memory_entries,
        disk_budget_bytes=args.cache_budget,
    )
    budget: Optional[int]
    if args.budget is None:
        budget = DEFAULT_MAX_PENDING_COST
    elif args.budget <= 0:
        budget = None
    else:
        budget = args.budget
    journal = None
    if args.journal_dir:
        journal = JobJournal(Path(args.journal_dir) / "journal.jsonl")
    return JobManager(
        jobs=args.jobs,
        cache=cache,
        max_pending_cost=budget,
        journal=journal,
        max_attempts=args.max_attempts,
        replica_timeout=args.replica_timeout,
        client_weights=_parse_weights(args.client_weight),
    )


async def _pump(handle: Any, quiet: bool) -> List[JobEvent]:
    events = []
    async for event in handle.events():
        events.append(event)
        if not quiet:
            print(describe(event))
    return events


def _finish_metrics(manager: JobManager, args: argparse.Namespace) -> None:
    snapshot = manager.snapshot()
    validate_metrics_snapshot(snapshot)
    if args.metrics_out:
        path = Path(args.metrics_out)
        path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
        print(f"wrote metrics snapshot to {path}")
    replicas = snapshot["replicas"]
    print(
        "service: computed={computed} cached={cached} deduped={deduped} "
        "peak_queue={peak}".format(
            computed=replicas["replicas_computed"],
            cached=replicas["replicas_from_cache"],
            deduped=replicas["replicas_deduped"],
            peak=snapshot["queue"]["peak_queue_depth"],
        )
    )


async def _serve(
    requests: Sequence[Tuple[ExperimentSpec, int]], args: argparse.Namespace
) -> int:
    manager = _make_manager(args)
    failures = 0
    async with manager:
        handles = manager.recover()
        for handle in handles:
            print(f"recovered {handle.job_id} {handle.spec.label} from the journal")
        for spec, priority in requests:
            try:
                handles.append(manager.submit(spec, priority=priority))
            except AdmissionError as error:
                failures += 1
                print(f"rejected {spec.label}: {error}")
        pumps = [
            asyncio.create_task(_pump(handle, args.quiet)) for handle in handles
        ]
        await manager.drain()
        if pumps:
            await asyncio.gather(*pumps)
        for handle in handles:
            try:
                result = await handle.result()
            except Exception as error:
                failures += 1
                print(f"{handle.job_id} {handle.spec.label}: {error}")
                continue
            print(f"{handle.job_id} {handle.spec.label}: {result.summary()}")
    if manager.journal is not None:
        manager.journal.close()
    _finish_metrics(manager, args)
    return 1 if failures else 0


async def _listen(args: argparse.Namespace) -> int:
    """``--listen``: serve the HTTP/WebSocket gateway until interrupted."""
    host, port = _parse_listen(args.listen)
    manager = _make_manager(args)
    async with manager:
        gateway = GatewayServer(manager, host=host, port=port)
        await gateway.start()
        for handle in manager.recover():
            gateway.track(handle)
            print(f"recovered {handle.job_id} {handle.spec.label} from the journal")
        print(f"serving on http://{host}:{gateway.port}", flush=True)
        try:
            await asyncio.Event().wait()
        finally:
            await gateway.aclose()
            if manager.journal is not None:
                manager.journal.close()
    return 0


def _litmus() -> int:
    """``--litmus``: the consistency matrix as a pass/fail CLI check."""
    from repro.processor.litmus import litmus_matrix
    from repro.protocols import PROTOCOLS

    results = litmus_matrix(tuple(PROTOCOLS))
    violations = 0
    for (pattern, protocol, consistency), result in sorted(results.items()):
        outcomes = " ".join(str(o) for o in sorted(result.outcomes))
        verdict = "ok"
        if not result.clean:
            violations += 1
            verdict = (
                "FORBIDDEN "
                + " ".join(str(o) for o in sorted(result.forbidden_observed))
            )
        print(f"{pattern:3s} {protocol:12s} {consistency:3s} {outcomes:24s} {verdict}")
    print(
        f"[litmus] {len(results)} cells, {violations} violations",
        flush=True,
    )
    return 1 if violations else 0


# -------------------------------------------------------------- self-test
def _check(condition: bool, message: str, problems: List[str]) -> None:
    if not condition:
        problems.append(message)


def _check_stream(events: List[JobEvent], problems: List[str]) -> None:
    """Assert the ordering contract of :mod:`repro.service.events`.

    Informational events (retries, quarantines, degradation notices) may
    interleave anywhere mid-stream, so they are filtered out before the
    replica/progress pair structure is checked.
    """
    label = events[0].job_id if events else "<empty>"
    if events:
        _check(
            not events[0].informational and not events[-1].informational,
            f"{label}: stream starts or ends with an informational event",
            problems,
        )
    events = [event for event in events if not event.informational]
    if len(events) == 1 and isinstance(events[0], JobCancelled):
        return  # cancelled before admission: a lone terminal is the contract
    _check(len(events) >= 2, f"{label}: stream has fewer than two events", problems)
    if not events:
        return
    _check(
        isinstance(events[0], JobAdmitted),
        f"{label}: stream does not start with JobAdmitted",
        problems,
    )
    _check(
        events[-1].terminal and isinstance(events[-1], JobCompleted),
        f"{label}: stream does not end with JobCompleted",
        problems,
    )
    middle = events[1:-1]
    _check(
        all(not event.terminal for event in middle),
        f"{label}: terminal event in mid-stream",
        problems,
    )
    pairs = [middle[index : index + 2] for index in range(0, len(middle), 2)]
    completed = 0
    for pair in pairs:
        ok = (
            len(pair) == 2
            and isinstance(pair[0], ReplicaCompleted)
            and isinstance(pair[1], JobProgress)
        )
        _check(ok, f"{label}: replica/progress events not paired", problems)
        if ok:
            completed += 1
            _check(
                pair[1].completed == completed,
                f"{label}: progress count {pair[1].completed} != {completed}",
                problems,
            )


async def _self_test(args: argparse.Namespace) -> int:
    scale = 0.05 if args.scale is None else args.scale
    problems: List[str] = []
    specs = [
        ExperimentSpec.make("oltp", protocol=protocol, scale=scale)
        for protocol in ("ts-snoop", "diropt")
    ]
    cache = ResultCache(args.cache_dir, memory_entries=args.memory_entries)

    # Phase 1: two clients submit overlapping sweeps concurrently.
    manager = JobManager(jobs=1, cache=cache)
    async with manager:
        first = [manager.submit(spec) for spec in specs]
        second = [manager.submit(spec) for spec in specs]
        pumps = [
            asyncio.create_task(_pump(handle, args.quiet))
            for handle in first + second
        ]
        await manager.drain()
        streams = await asyncio.gather(*pumps)
        results_first = [await handle.result() for handle in first]
        results_second = [await handle.result() for handle in second]

    unique_replicas = sum(spec.config().perturbation_replicas for spec in specs)
    _check(
        manager.backend.submissions == unique_replicas,
        f"overlapping sweeps simulated {manager.backend.submissions} "
        f"replicas, expected exactly {unique_replicas}",
        problems,
    )
    _check(
        results_first == results_second,
        "duplicate submissions returned different results",
        problems,
    )
    for events in streams:
        _check_stream(events, problems)
    duplicate_sources = {
        event.source
        for events in streams[len(specs) :]
        for event in events
        if isinstance(event, ReplicaCompleted)
    }
    _check(
        SOURCE_COMPUTED not in duplicate_sources,
        "a duplicate job recomputed a replica instead of joining/replaying",
        problems,
    )

    # Phase 2: a fresh manager replays the sweep purely from the cache.
    replay = JobManager(jobs=1, cache=cache)
    async with replay:
        handles = [replay.submit(spec) for spec in specs]
        drains = [asyncio.create_task(_pump(handle, True)) for handle in handles]
        await replay.drain()
        await asyncio.gather(*drains)
        replayed = [await handle.result() for handle in handles]
    _check(
        replay.backend.submissions == 0,
        f"cached replay submitted {replay.backend.submissions} replicas "
        "to the pool, expected zero simulation work",
        problems,
    )
    _check(
        replayed == results_first,
        "cached replay is not bit-identical to the fresh run",
        problems,
    )

    # Phase 3: kill a pool worker mid-sweep, tear the manager down, and
    # recover the sweep from the journal + cache frontier.
    recovery_stats = await _kill_and_recover(scale, args.quiet, problems)

    # Phase 4: drive the HTTP/WebSocket gateway over a real loopback
    # socket with two weighted clients: DRR fairness, wire bit-identity,
    # cached replay with zero pool submissions, disk-budget eviction.
    gateway_stats = _loopback_gateway(scale, problems)

    manager.metrics.extra["self_test"] = {
        "scale": scale,
        "unique_replicas": unique_replicas,
        "replay_submissions": replay.backend.submissions,
        "kill_and_recover": recovery_stats,
        "gateway": gateway_stats,
    }
    snapshot = manager.snapshot()
    try:
        validate_metrics_snapshot(snapshot)
    except Exception as error:
        problems.append(f"metrics snapshot failed validation: {error}")
    if args.metrics_out:
        path = Path(args.metrics_out)
        path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")

    for problem in problems:
        print(f"self-test FAILED: {problem}")
    if not problems:
        print(
            f"self-test ok: {unique_replicas} unique replicas computed once, "
            f"{len(specs)} duplicate jobs joined, cached replay bit-identical "
            "with zero pool submissions; kill-and-recover resumed "
            f"{recovery_stats['recovered_jobs']} job(s) recomputing only "
            f"{recovery_stats['recovery_submissions']}/"
            f"{recovery_stats['total_replicas']} replica(s), bit-identical; "
            "loopback gateway served 2:1 weighted clients within "
            f"{gateway_stats['max_fairness_gap']:.0f}/"
            f"{gateway_stats['quantum']} cost units of their shares, "
            f"replayed over HTTP with {gateway_stats['replay_submissions']} "
            f"pool submissions and evicted {gateway_stats['disk_evictions']} "
            "entries under the disk budget"
        )
    return 1 if problems else 0


def _loopback_gateway(scale: float, problems: List[str]) -> Dict[str, Any]:
    """The ``--self-test`` loopback-gateway pass.

    Hosts a real gateway on an ephemeral loopback port
    (:class:`~repro.service.server.ServerThread`) and drives it with two
    blocking :class:`~repro.client.ServiceClient` identities holding a
    2:1 weight split.  The scheduler is paused while both clients submit,
    so the deficit-round-robin schedule over the resulting backlog is
    deterministic; every served prefix while both lanes stay backlogged
    must keep the clients' cumulative unit-cost service within one
    quantum of their weighted shares.  Results must be bit-identical to
    direct ``api.run_experiment`` calls, a second gateway over the same
    cache directory must replay the sweep with **zero** pool submissions,
    and a third gateway with a small ``--cache-budget`` must evict
    least-recently-used disk entries while staying under the budget.
    """
    weights = {"alpha": 2, "beta": 1}
    alpha_specs = [
        ExperimentSpec.make("oltp", protocol="ts-snoop", scale=scale),
        ExperimentSpec.make("oltp", protocol="diropt", scale=scale),
        ExperimentSpec.make("oltp", protocol="dirclassic", scale=scale),
        ExperimentSpec.make("oltp", protocol="ts-snoop", scale=scale, slack=2),
    ]
    beta_specs = [
        ExperimentSpec.make("oltp", protocol="diropt", scale=scale, slack=2),
        ExperimentSpec.make("oltp", protocol="dirclassic", scale=scale, slack=2),
    ]
    all_specs = alpha_specs + beta_specs
    stats: Dict[str, Any] = {
        "weights": dict(weights),
        "jobs": len(all_specs),
        "quantum": 0,
        "serve_prefixes_checked": 0,
        "max_fairness_gap": 0.0,
        "replay_submissions": -1,
        "disk_evictions": 0,
    }
    with tempfile.TemporaryDirectory(prefix="repro-gateway-") as tmp:
        root = Path(tmp)

        # Phase A: weighted fairness and wire bit-identity.
        with ServerThread(
            jobs=1,
            cache=ResultCache(root / "cache"),
            client_weights=weights,
            record_schedule=True,
        ) as server:
            clients = {
                "alpha": ServiceClient(server.base_url, client_id="alpha"),
                "beta": ServiceClient(server.base_url, client_id="beta"),
            }
            server.call(server.manager.pause_scheduling)
            accepted = [
                ("alpha", spec, clients["alpha"].submit(spec))
                for spec in alpha_specs
            ] + [
                ("beta", spec, clients["beta"].submit(spec))
                for spec in beta_specs
            ]
            server.call(server.manager.resume_scheduling)
            fresh: List[Any] = []
            for name, spec, ticket in accepted:
                events = list(clients[name].stream(ticket.job_id))
                _check_stream(events, problems)
                final = events[-1] if events else None
                _check(
                    isinstance(final, JobCompleted),
                    f"gateway job {ticket.job_id} did not complete",
                    problems,
                )
                fresh.append(final.result if isinstance(final, JobCompleted) else None)
            serve_log = server.call(
                lambda: list(server.manager.scheduler.serve_log)
            )
            stats["quantum"] = server.call(
                lambda: server.manager.scheduler.quantum
            )

        backlog = {"alpha": len(alpha_specs), "beta": len(beta_specs)}
        served = {"alpha": 0, "beta": 0}
        for client_id, cost in serve_log:
            both_backlogged = backlog["alpha"] > 0 and backlog["beta"] > 0
            served[client_id] += cost
            backlog[client_id] -= 1
            if not both_backlogged:
                continue
            gap = abs(
                served["alpha"] / weights["alpha"]
                - served["beta"] / weights["beta"]
            )
            stats["serve_prefixes_checked"] += 1
            stats["max_fairness_gap"] = max(stats["max_fairness_gap"], gap)
            _check(
                gap <= stats["quantum"],
                f"gateway DRR fairness violated: per-weight service gap "
                f"{gap} exceeds the quantum {stats['quantum']} "
                f"after serving {served}",
                problems,
            )
        _check(
            stats["serve_prefixes_checked"] > 0,
            "gateway fairness pass never observed both lanes backlogged",
            problems,
        )
        for spec, result in zip(all_specs, fresh):
            _check(
                result is not None and result == spec.run(),
                f"gateway result for {spec.label} is not bit-identical to "
                "a direct api.run_experiment call",
                problems,
            )

        # Phase B: a second gateway over the same cache directory replays
        # the whole sweep over HTTP without any pool submissions.
        with ServerThread(jobs=1, cache=ResultCache(root / "cache")) as replay:
            client = ServiceClient(replay.base_url, client_id="replay")
            replayed = [client.run(spec) for spec in all_specs]
            stats["replay_submissions"] = replay.call(
                lambda: replay.manager.backend.submissions
            )
        _check(
            stats["replay_submissions"] == 0,
            f"gateway cached replay submitted {stats['replay_submissions']} "
            "replicas to the pool, expected zero simulation work",
            problems,
        )
        _check(
            replayed == fresh,
            "gateway cached replay is not bit-identical to the fresh run",
            problems,
        )

        # Phase C: a disk budget of ~2.5 entries must evict LRU entries
        # and stay under the budget while the sweep still completes.
        sizes = sorted(
            entry.stat().st_size for entry in (root / "cache").glob("??/*.json")
        )
        budget = sizes[0] + sizes[1] + sizes[2] // 2
        with ServerThread(
            jobs=1,
            cache=ResultCache(root / "budgeted", disk_budget_bytes=budget),
        ) as budgeted:
            client = ServiceClient(budgeted.base_url, client_id="evict")
            for spec in all_specs:
                client.run(spec)
            metrics = client.metrics()
        cache_stats = metrics["cache"]
        stats["disk_evictions"] = cache_stats["disk_evictions"]
        _check(
            cache_stats["disk_evictions"] > 0,
            "gateway disk-budget pass evicted nothing despite writing "
            f"{len(all_specs)} entries into a {budget}-byte budget",
            problems,
        )
        _check(
            cache_stats["disk_bytes"] <= budget,
            f"disk store holds {cache_stats['disk_bytes']} bytes, over the "
            f"{budget}-byte budget",
            problems,
        )
    return stats


async def _kill_and_recover(
    scale: float, quiet: bool, problems: List[str]
) -> Dict[str, Any]:
    """The ``--self-test`` kill-and-recover pass.

    Starts a multi-replica sweep on a one-worker process pool with a disk
    cache and a journal, SIGKILLs the pool worker after the first replica
    lands, abandons the manager mid-sweep (no drain, no terminal record),
    appends a torn half-record to the journal, then recovers in a fresh
    service life: the torn tail must truncate cleanly, only the missing
    replicas may be recomputed, and the merged result must be bit-identical
    to an unfaulted run.
    """
    spec = ExperimentSpec.make(
        "oltp", scale=scale, perturbation_replicas=3
    )
    stats: Dict[str, Any] = {
        "recovered_jobs": 0,
        "total_replicas": spec.config().perturbation_replicas,
        "recovery_submissions": -1,
        "recovered_from_cache": 0,
        "torn_bytes_dropped": 0,
    }

    # The unfaulted reference run (memory-only cache, inline backend).
    baseline_manager = JobManager(jobs=1)
    async with baseline_manager:
        baseline_handle = baseline_manager.submit(spec)
        drain = asyncio.create_task(_pump(baseline_handle, True))
        await baseline_manager.drain()
        await drain
        baseline = await baseline_handle.result()

    with tempfile.TemporaryDirectory(prefix="repro-selftest-") as tmp:
        root = Path(tmp)
        journal_path = root / "journal.jsonl"
        cache = ResultCache(root / "cache")
        journal = JobJournal(journal_path, fsync=False)
        backend = ProcessPoolBackend(max_workers=1)
        crashed = JobManager(
            jobs=1, cache=cache, backend=backend, journal=journal
        )
        await crashed.start()
        crashed.submit(spec)
        deadline = asyncio.get_running_loop().time() + 120.0
        while journal.count("replica-completed") < 1:
            if asyncio.get_running_loop().time() > deadline:
                problems.append(
                    "kill-and-recover: no replica completed within 120s"
                )
                await crashed.aclose()
                journal.close()
                return stats
            await asyncio.sleep(0.005)
        # SIGKILL the pool worker(s), then abandon the manager before it
        # can observe the crash: no retry, no terminal journal record --
        # exactly what a service process dying mid-sweep leaves behind.
        executor = backend.executor
        if executor is not None:
            for process in list((executor._processes or {}).values()):
                process.kill()
        await crashed.aclose()
        journal.close()
        completed_before = journal.count("replica-completed")
        with open(journal_path, "ab") as handle:
            handle.write(b'deadbeef {"type":"replica-comp')

        # A fresh service life over the same journal and cache directory.
        recovered_journal = JobJournal(journal_path, fsync=False)
        stats["torn_bytes_dropped"] = recovered_journal.torn_bytes_dropped
        _check(
            recovered_journal.torn_bytes_dropped > 0,
            "kill-and-recover: the torn journal tail was not truncated",
            problems,
        )
        recovery_cache = ResultCache(root / "cache")
        recovery = JobManager(
            jobs=1, cache=recovery_cache, journal=recovered_journal
        )
        async with recovery:
            handles = recovery.recover()
            stats["recovered_jobs"] = len(handles)
            _check(
                len(handles) == 1,
                f"kill-and-recover: expected 1 unfinished job to recover, "
                f"got {len(handles)}",
                problems,
            )
            pumps = [
                asyncio.create_task(_pump(handle, quiet)) for handle in handles
            ]
            await recovery.drain()
            streams = await asyncio.gather(*pumps)
            results = [await handle.result() for handle in handles]
        recovered_journal.close()

        for events in streams:
            _check_stream(events, problems)
        total = stats["total_replicas"]
        from_cache = recovery.metrics.replicas_from_cache
        submissions = recovery.backend.submissions
        stats["recovery_submissions"] = submissions
        stats["recovered_from_cache"] = from_cache
        _check(
            submissions + from_cache == total,
            f"kill-and-recover: {submissions} recomputed + {from_cache} "
            f"cached != {total} total replicas",
            problems,
        )
        _check(
            from_cache >= completed_before,
            f"kill-and-recover: only {from_cache} replicas came from the "
            f"cache but the journal recorded {completed_before} complete",
            problems,
        )
        _check(
            submissions < total,
            "kill-and-recover: recovery recomputed every replica instead "
            "of resuming from the cache frontier",
            problems,
        )
        _check(
            bool(results) and results[0] == baseline,
            "kill-and-recover: recovered result is not bit-identical to "
            "the unfaulted run",
            problems,
        )
    return stats
