"""Command-line front-end of the simulation service.

::

    python -m repro.service oltp,protocol=diropt,scale=0.2 dss,priority=1
    python -m repro.service --jobs 4 --cache-dir .repro-cache oltp dss
    python -m repro.service --self-test --metrics-out service-metrics.json

Each positional argument is one experiment request: a workload name
followed by comma-separated ``key=value`` settings.  ``protocol``,
``network``, ``scale`` and ``priority`` are recognised directly; any other
key is passed through as a :class:`~repro.system.config.SystemConfig`
override (``slack=2``, ``perturbation_replicas=3``, ...).  Requests are
validated eagerly, streamed as they progress, and deduplicated through
the shared result cache.

``--self-test`` runs a deterministic end-to-end exercise of the service
(overlapping sweeps from two clients, cache replay, event-ordering and
bit-identity checks) and exits non-zero on any violation; CI runs it as a
smoke test and archives the resulting metrics snapshot.
"""

from __future__ import annotations

import argparse
import asyncio
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.api.spec import ExperimentSpec, ExperimentSpecError
from repro.service.cache import ResultCache
from repro.service.events import (
    SOURCE_COMPUTED,
    JobAdmitted,
    JobCompleted,
    JobEvent,
    JobProgress,
    ReplicaCompleted,
    describe,
)
from repro.service.manager import (
    DEFAULT_MAX_PENDING_COST,
    AdmissionError,
    JobManager,
)
from repro.service.metrics import validate_metrics_snapshot

_DIRECT_KEYS = ("workload", "protocol", "network")


def _coerce(value: str) -> Any:
    """``key=value`` strings into numbers/bools where they look like one."""
    lowered = value.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for kind in (int, float):
        try:
            return kind(value)
        except ValueError:
            continue
    return value


def parse_request(
    text: str, default_scale: Optional[float] = None
) -> Tuple[ExperimentSpec, int]:
    """One CLI positional into ``(spec, priority)``.

    Grammar: ``workload[,key=value]...`` -- e.g.
    ``oltp,protocol=diropt,scale=0.2,priority=1,slack=2``.  A request
    without an inline ``scale=`` falls back to ``default_scale`` (the
    ``--scale`` flag) when one is given.
    """
    named: Dict[str, str] = {}
    workload: Optional[str] = None
    overrides: Dict[str, Any] = {}
    priority = 0
    for part in filter(None, (piece.strip() for piece in text.split(","))):
        if "=" not in part:
            if workload is not None:
                raise ExperimentSpecError(
                    f"request {text!r} names two workloads "
                    f"({workload!r} and {part!r})"
                )
            workload = part
            continue
        key, _, value = part.partition("=")
        key = key.strip()
        value = value.strip()
        if key == "priority":
            priority = int(value)
        elif key == "scale":
            overrides["scale"] = float(value)
        elif key in _DIRECT_KEYS:
            named[key] = value
        else:
            overrides[key] = _coerce(value)
    workload = named.pop("workload", workload)
    if workload is None:
        raise ExperimentSpecError(f"request {text!r} does not name a workload")
    if default_scale is not None:
        overrides.setdefault("scale", default_scale)
    spec = ExperimentSpec.make(workload, **named, **overrides)
    return spec, priority


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Run experiment requests through the simulation service.",
    )
    parser.add_argument(
        "requests",
        nargs="*",
        metavar="REQUEST",
        help="workload[,key=value]... e.g. oltp,protocol=diropt,scale=0.2",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (1 serial, 0 = one per CPU; default 1)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="persist the result cache under DIR (default: memory only)",
    )
    parser.add_argument(
        "--memory-entries",
        type=int,
        default=512,
        metavar="N",
        help="in-memory LRU size of the result cache (default 512)",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=None,
        metavar="COST",
        help="admission budget in cost units (0 disables admission control)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write the schema-v1 service metrics snapshot to PATH",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="default reference-stream scale for requests without an "
        "inline scale= (and for --self-test, where it defaults to 0.05)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the event stream"
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run the deterministic service exercise and exit non-zero on failure",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.self_test:
        if args.requests:
            parser.error("--self-test takes no REQUEST arguments")
        return asyncio.run(_self_test(args))
    if not args.requests:
        parser.error("no REQUEST given (or use --self-test)")
    try:
        requests = [parse_request(text, args.scale) for text in args.requests]
    except (ExperimentSpecError, ValueError) as error:
        parser.error(str(error))
    return asyncio.run(_serve(requests, args))


def _make_manager(args: argparse.Namespace) -> JobManager:
    cache = ResultCache(args.cache_dir, memory_entries=args.memory_entries)
    budget: Optional[int]
    if args.budget is None:
        budget = DEFAULT_MAX_PENDING_COST
    elif args.budget <= 0:
        budget = None
    else:
        budget = args.budget
    return JobManager(jobs=args.jobs, cache=cache, max_pending_cost=budget)


async def _pump(handle: Any, quiet: bool) -> List[JobEvent]:
    events = []
    async for event in handle.events():
        events.append(event)
        if not quiet:
            print(describe(event))
    return events


def _finish_metrics(manager: JobManager, args: argparse.Namespace) -> None:
    snapshot = manager.snapshot()
    validate_metrics_snapshot(snapshot)
    if args.metrics_out:
        path = Path(args.metrics_out)
        path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
        print(f"wrote metrics snapshot to {path}")
    replicas = snapshot["replicas"]
    print(
        "service: computed={computed} cached={cached} deduped={deduped} "
        "peak_queue={peak}".format(
            computed=replicas["replicas_computed"],
            cached=replicas["replicas_from_cache"],
            deduped=replicas["replicas_deduped"],
            peak=snapshot["queue"]["peak_queue_depth"],
        )
    )


async def _serve(
    requests: Sequence[Tuple[ExperimentSpec, int]], args: argparse.Namespace
) -> int:
    manager = _make_manager(args)
    failures = 0
    async with manager:
        handles = []
        for spec, priority in requests:
            try:
                handles.append(manager.submit(spec, priority=priority))
            except AdmissionError as error:
                failures += 1
                print(f"rejected {spec.label}: {error}")
        pumps = [
            asyncio.create_task(_pump(handle, args.quiet)) for handle in handles
        ]
        await manager.drain()
        if pumps:
            await asyncio.gather(*pumps)
        for handle in handles:
            try:
                result = await handle.result()
            except Exception as error:
                failures += 1
                print(f"{handle.job_id} {handle.spec.label}: {error}")
                continue
            print(f"{handle.job_id} {handle.spec.label}: {result.summary()}")
    _finish_metrics(manager, args)
    return 1 if failures else 0


# -------------------------------------------------------------- self-test
def _check(condition: bool, message: str, problems: List[str]) -> None:
    if not condition:
        problems.append(message)


def _check_stream(events: List[JobEvent], problems: List[str]) -> None:
    """Assert the ordering contract of :mod:`repro.service.events`."""
    label = events[0].job_id if events else "<empty>"
    _check(len(events) >= 2, f"{label}: stream has fewer than two events", problems)
    if not events:
        return
    _check(
        isinstance(events[0], JobAdmitted),
        f"{label}: stream does not start with JobAdmitted",
        problems,
    )
    _check(
        events[-1].terminal and isinstance(events[-1], JobCompleted),
        f"{label}: stream does not end with JobCompleted",
        problems,
    )
    middle = events[1:-1]
    _check(
        all(not event.terminal for event in middle),
        f"{label}: terminal event in mid-stream",
        problems,
    )
    pairs = [middle[index : index + 2] for index in range(0, len(middle), 2)]
    completed = 0
    for pair in pairs:
        ok = (
            len(pair) == 2
            and isinstance(pair[0], ReplicaCompleted)
            and isinstance(pair[1], JobProgress)
        )
        _check(ok, f"{label}: replica/progress events not paired", problems)
        if ok:
            completed += 1
            _check(
                pair[1].completed == completed,
                f"{label}: progress count {pair[1].completed} != {completed}",
                problems,
            )


async def _self_test(args: argparse.Namespace) -> int:
    scale = 0.05 if args.scale is None else args.scale
    problems: List[str] = []
    specs = [
        ExperimentSpec.make("oltp", protocol=protocol, scale=scale)
        for protocol in ("ts-snoop", "diropt")
    ]
    cache = ResultCache(args.cache_dir, memory_entries=args.memory_entries)

    # Phase 1: two clients submit overlapping sweeps concurrently.
    manager = JobManager(jobs=1, cache=cache)
    async with manager:
        first = [manager.submit(spec) for spec in specs]
        second = [manager.submit(spec) for spec in specs]
        pumps = [
            asyncio.create_task(_pump(handle, args.quiet))
            for handle in first + second
        ]
        await manager.drain()
        streams = await asyncio.gather(*pumps)
        results_first = [await handle.result() for handle in first]
        results_second = [await handle.result() for handle in second]

    unique_replicas = sum(spec.config().perturbation_replicas for spec in specs)
    _check(
        manager.backend.submissions == unique_replicas,
        f"overlapping sweeps simulated {manager.backend.submissions} "
        f"replicas, expected exactly {unique_replicas}",
        problems,
    )
    _check(
        results_first == results_second,
        "duplicate submissions returned different results",
        problems,
    )
    for events in streams:
        _check_stream(events, problems)
    duplicate_sources = {
        event.source
        for events in streams[len(specs) :]
        for event in events
        if isinstance(event, ReplicaCompleted)
    }
    _check(
        SOURCE_COMPUTED not in duplicate_sources,
        "a duplicate job recomputed a replica instead of joining/replaying",
        problems,
    )

    # Phase 2: a fresh manager replays the sweep purely from the cache.
    replay = JobManager(jobs=1, cache=cache)
    async with replay:
        handles = [replay.submit(spec) for spec in specs]
        drains = [asyncio.create_task(_pump(handle, True)) for handle in handles]
        await replay.drain()
        await asyncio.gather(*drains)
        replayed = [await handle.result() for handle in handles]
    _check(
        replay.backend.submissions == 0,
        f"cached replay submitted {replay.backend.submissions} replicas "
        "to the pool, expected zero simulation work",
        problems,
    )
    _check(
        replayed == results_first,
        "cached replay is not bit-identical to the fresh run",
        problems,
    )

    manager.metrics.extra["self_test"] = {
        "scale": scale,
        "unique_replicas": unique_replicas,
        "replay_submissions": replay.backend.submissions,
    }
    snapshot = manager.snapshot()
    try:
        validate_metrics_snapshot(snapshot)
    except Exception as error:
        problems.append(f"metrics snapshot failed validation: {error}")
    if args.metrics_out:
        path = Path(args.metrics_out)
        path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")

    for problem in problems:
        print(f"self-test FAILED: {problem}")
    if not problems:
        print(
            f"self-test ok: {unique_replicas} unique replicas computed once, "
            f"{len(specs)} duplicate jobs joined, cached replay bit-identical "
            "with zero pool submissions"
        )
    return 1 if problems else 0
