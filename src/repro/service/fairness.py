"""Per-client deficit-round-robin scheduling for the job manager.

:class:`DeficitRoundRobinQueue` replaces the flat priority+FIFO replica
queue of :class:`~repro.service.manager.JobManager` with *weighted fair
queueing across clients*: every enqueued unit carries a ``client_id`` and
a ``cost`` (the admission controller's unit-cost estimate -- the same
currency the pending-cost budget is denominated in), and the scheduler
serves clients deficit-round-robin:

* each client owns one lane, ordered priority-then-FIFO (so a single
  client sees exactly the old scheduling behaviour);
* the scheduler visits backlogged lanes in a round-robin ring; on each
  visit a lane's *deficit counter* grows by ``quantum * weight`` and the
  lane is served while the deficit covers the head unit's cost;
* the quantum is the largest unit cost seen so far, so every visit can
  afford at least one unit and no lane ever banks more than one quantum
  of unspent credit -- which bounds starvation *by construction*: over
  any interval in which two clients stay backlogged, their cumulative
  service per unit weight differs by at most one quantum each
  (property-tested in ``tests/service/test_fairness.py``).

The queue mirrors the ``asyncio.Queue`` surface the manager's workers
consume (``put_nowait`` / ``get`` / ``task_done`` / ``join``) and adds
``hold()`` / ``release()`` -- a scheduling gate used by tests and the
``--self-test`` fairness pass to build a deterministic backlog before any
unit is dispatched.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

#: Client id used when a submission does not name one.
DEFAULT_CLIENT_ID = "default"

#: Weight assigned to clients that were never given an explicit one.
DEFAULT_WEIGHT = 1


class _Lane:
    """One client's backlog: a priority-then-FIFO heap plus DRR state."""

    __slots__ = ("heap", "deficit", "fresh_visit")

    def __init__(self) -> None:
        self.heap: List[Tuple[int, int, Any, int]] = []
        self.deficit = 0
        self.fresh_visit = True


class DeficitRoundRobinQueue:
    """Weighted deficit-round-robin queue over per-client lanes.

    ``weights`` maps client ids to positive integer weights (missing
    clients get ``default_weight``).  ``record_schedule=True`` keeps the
    full serve log as ``(client_id, cost)`` tuples -- unbounded, so it is
    off by default and enabled by tests and the self-test fairness pass.
    """

    def __init__(
        self,
        *,
        weights: Optional[Dict[str, int]] = None,
        default_weight: int = DEFAULT_WEIGHT,
        record_schedule: bool = False,
    ) -> None:
        if default_weight < 1:
            raise ValueError("default_weight must be a positive integer")
        self._weights: Dict[str, int] = {}
        for client, weight in (weights or {}).items():
            self.set_weight(client, weight)
        self.default_weight = default_weight
        self._lanes: Dict[str, _Lane] = {}
        self._ring: Deque[str] = deque()
        self._sequence = itertools.count()
        self._size = 0
        self._quantum = 1
        self._unfinished = 0
        self._finished = asyncio.Event()
        self._finished.set()
        self._ready = asyncio.Event()
        self._gate = asyncio.Event()
        self._gate.set()
        #: Cumulative dequeued cost per client (the fairness ledger).
        self.served_cost: Dict[str, int] = {}
        #: Units dequeued per client.
        self.served_units: Dict[str, int] = {}
        self.serve_log: Optional[List[Tuple[str, int]]] = (
            [] if record_schedule else None
        )

    # ------------------------------------------------------------- weights
    def set_weight(self, client_id: str, weight: int) -> None:
        """Give ``client_id`` a weighted share (must be a positive int)."""
        if not isinstance(weight, int) or weight < 1:
            raise ValueError(
                f"client weight must be a positive integer, got {weight!r} "
                f"for client {client_id!r}"
            )
        self._weights[client_id] = weight

    def weight_of(self, client_id: str) -> int:
        return self._weights.get(client_id, self.default_weight)

    def weights_dict(self) -> Dict[str, int]:
        """Explicit weights plus every client seen, for metrics snapshots."""
        known = dict(self._weights)
        for client in self.served_cost:
            known.setdefault(client, self.default_weight)
        return known

    @property
    def quantum(self) -> int:
        """The DRR quantum: the largest unit cost seen so far."""
        return self._quantum

    # ---------------------------------------------------------------- gate
    def hold(self) -> None:
        """Stop dispatching units (enqueues still accepted)."""
        self._gate.clear()

    def release(self) -> None:
        """Resume dispatching units held back by :meth:`hold`."""
        self._gate.set()

    # ------------------------------------------------------------- enqueue
    def put_nowait(
        self, client_id: str, priority: int, cost: int, item: Any
    ) -> None:
        """Enqueue one unit of ``cost`` for ``client_id``.

        Within a client, lower ``priority`` dispatches first and ties are
        FIFO -- the exact ordering contract of the old flat queue.
        """
        if cost < 1:
            raise ValueError(f"unit cost must be positive, got {cost!r}")
        lane = self._lanes.get(client_id)
        if lane is None:
            lane = self._lanes[client_id] = _Lane()
        if not lane.heap:
            lane.fresh_visit = True
            self._ring.append(client_id)
        heapq.heappush(lane.heap, (priority, next(self._sequence), item, cost))
        self._size += 1
        self._quantum = max(self._quantum, cost)
        self._unfinished += 1
        self._finished.clear()
        self._ready.set()

    # ------------------------------------------------------------- dequeue
    def _pop(self) -> Tuple[str, Any, int]:
        """The DRR scheduling decision; requires a non-empty queue."""
        while True:
            client = self._ring[0]
            lane = self._lanes[client]
            if lane.fresh_visit:
                lane.deficit += self._quantum * self.weight_of(client)
                lane.fresh_visit = False
            head_cost = lane.heap[0][3]
            if lane.deficit >= head_cost:
                _priority, _seq, item, cost = heapq.heappop(lane.heap)
                lane.deficit -= cost
                self._size -= 1
                if not lane.heap:
                    # An emptied lane forfeits its leftover credit: deficit
                    # only accumulates while a client is backlogged.
                    lane.deficit = 0
                    self._ring.popleft()
                return client, item, cost
            # Deficit does not cover the head unit: bank it and move on.
            self._ring.rotate(-1)
            lane.fresh_visit = True

    async def get(self) -> Any:
        """Dequeue the next unit per the DRR schedule (awaits work)."""
        while True:
            await self._gate.wait()
            if self._size and self._gate.is_set():
                client, item, cost = self._pop()
                self.served_cost[client] = self.served_cost.get(client, 0) + cost
                self.served_units[client] = self.served_units.get(client, 0) + 1
                if self.serve_log is not None:
                    self.serve_log.append((client, cost))
                return item
            self._ready.clear()
            await self._ready.wait()

    # --------------------------------------------------------- join/drain
    def task_done(self) -> None:
        if self._unfinished <= 0:
            raise ValueError("task_done() called more times than put_nowait()")
        self._unfinished -= 1
        if self._unfinished == 0:
            self._finished.set()

    async def join(self) -> None:
        """Wait until every enqueued unit has been processed."""
        await self._finished.wait()

    # --------------------------------------------------------- introspection
    def __len__(self) -> int:
        return self._size

    def backlog_of(self, client_id: str) -> int:
        lane = self._lanes.get(client_id)
        return len(lane.heap) if lane is not None else 0

    def clients_dict(self) -> Dict[str, Dict[str, int]]:
        """Per-client scheduling state for the metrics snapshot."""
        out: Dict[str, Dict[str, int]] = {}
        for client in sorted(set(self.served_cost) | set(self._lanes)):
            out[client] = {
                "weight": self.weight_of(client),
                "served_cost": self.served_cost.get(client, 0),
                "served_units": self.served_units.get(client, 0),
                "backlog": self.backlog_of(client),
            }
        return out
