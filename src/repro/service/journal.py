"""Crash-safe job journal: append-only, fsync'd, schema-versioned.

The journal is the service's durability layer: every job submission,
replica completion, retry, quarantine and terminal transition is appended
as one self-checking record, flushed and fsync'd before the manager moves
on, so a service killed at *any* instant can be restarted and resume its
in-flight sweeps (:meth:`repro.service.manager.JobManager.recover`
replays unfinished jobs; the :class:`~repro.service.cache.ResultCache`
supplies the replicas the journal already recorded as complete).

Wire format -- one record per line::

    <crc32:8 hex> <canonical JSON object>\\n

The CRC covers the JSON text, so a record is valid iff its line is whole
and its checksum matches.  A crash mid-append leaves a *torn tail*: a
final line with no newline, a truncated JSON body, or a mismatched CRC.
Opening the journal truncates the tail (every byte from the first invalid
record onward) instead of failing -- the dropped byte count is reported in
:attr:`JobJournal.torn_bytes_dropped` -- because a torn record is, by
construction, one the service never acknowledged.  The first record is a
schema-versioned header; a journal written by an incompatible schema
raises :class:`JournalError` rather than being silently misread.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.service.faults import (
    KIND_TORN_WRITE,
    SITE_JOURNAL_APPEND,
    FaultPlan,
    fault_exception,
)

#: Version of the journal wire format (bump on incompatible change).
JOURNAL_SCHEMA_VERSION = 1

#: ``kind`` discriminator of the header record.
JOURNAL_KIND = "repro.service.journal"

#: Record types the replay state machine understands.
RECORD_TYPES = frozenset(
    {
        "header",
        "job-submitted",
        "replica-retried",
        "replica-completed",
        "replica-failed",
        "job-completed",
        "job-cancelled",
        "job-failed",
        "job-recovered",
    }
)

#: Record types that end a job's lifecycle.
TERMINAL_TYPES = frozenset({"job-completed", "job-cancelled", "job-failed"})


class JournalError(ValueError):
    """The journal cannot be used (schema mismatch, bad record type...)."""


# ------------------------------------------------------------ wire format
def encode_record(record: Dict[str, Any]) -> bytes:
    """One record as its checksummed line (canonical JSON + CRC32)."""
    body = json.dumps(record, sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x} {body}\n".encode("utf-8")


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse and verify one journal line; raises :class:`JournalError`."""
    if not line.endswith(b"\n"):
        raise JournalError("torn record: line has no terminating newline")
    text = line[:-1].decode("utf-8", errors="replace")
    if len(text) < 10 or text[8] != " ":
        raise JournalError("torn record: missing checksum prefix")
    crc_text, body = text[:8], text[9:]
    try:
        expected = int(crc_text, 16)
    except ValueError:
        raise JournalError(f"torn record: bad checksum field {crc_text!r}") from None
    actual = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    if actual != expected:
        raise JournalError(
            f"torn record: checksum {actual:08x} does not match {crc_text}"
        )
    try:
        record = json.loads(body)
    except json.JSONDecodeError as error:
        raise JournalError(f"torn record: invalid JSON body ({error})") from None
    if not isinstance(record, dict) or "type" not in record:
        raise JournalError("invalid record: not an object with a 'type'")
    return record


def _header_record() -> Dict[str, Any]:
    return {
        "type": "header",
        "kind": JOURNAL_KIND,
        "schema_version": JOURNAL_SCHEMA_VERSION,
    }


# ------------------------------------------------------------ replay state
@dataclass
class JournaledJob:
    """One job's lifecycle as reconstructed from the journal."""

    job_id: str
    priority: int
    spec: Dict[str, Any]
    keys: List[str]
    #: Fair-scheduling client lane the job was submitted under.
    client: str = "default"
    #: Finished replicas: index -> cache key.
    completed: Dict[int, str] = field(default_factory=dict)
    #: Quarantined replicas: index -> error repr.
    failed: Dict[int, str] = field(default_factory=dict)
    #: Retry attempts observed, per replica index.
    retries: Dict[int, int] = field(default_factory=dict)
    #: The terminal record type, or ``None`` while the job is in flight.
    terminal: Optional[str] = None
    #: Set when a later service instance resubmitted this job.
    recovered_to: Optional[str] = None

    @property
    def finished(self) -> bool:
        return self.terminal is not None

    def missing_replicas(self) -> List[int]:
        """Replica indices with no completion (nor quarantine) record."""
        return [
            index
            for index in range(len(self.keys))
            if index not in self.completed and index not in self.failed
        ]


def replay_records(records: List[Dict[str, Any]]) -> Dict[str, JournaledJob]:
    """Fold journal records into per-job lifecycle state, submission order."""
    jobs: Dict[str, JournaledJob] = {}
    for record in records:
        kind = record.get("type")
        job_id = record.get("job")
        if kind == "job-submitted":
            jobs[job_id] = JournaledJob(
                job_id=job_id,
                priority=record.get("priority", 0),
                spec=record.get("spec", {}),
                keys=list(record.get("keys", ())),
                client=record.get("client", "default"),
            )
            continue
        entry = jobs.get(job_id)
        if kind == "job-recovered":
            source = jobs.get(record.get("from", ""))
            if source is not None:
                source.recovered_to = job_id
            continue
        if entry is None:
            continue  # replica record for a job submitted before a rotation
        if kind == "replica-completed":
            entry.completed[record["replica"]] = record.get("key", "")
        elif kind == "replica-failed":
            entry.failed[record["replica"]] = record.get("error", "")
        elif kind == "replica-retried":
            index = record["replica"]
            entry.retries[index] = max(
                entry.retries.get(index, 0), record.get("attempt", 0)
            )
        elif kind in TERMINAL_TYPES:
            entry.terminal = kind
    return jobs


# ---------------------------------------------------------------- journal
class JobJournal:
    """The append-only journal file behind one (or several) service lives.

    Opening an existing journal validates its header, replays every whole
    record and truncates the torn tail in place; appends then continue
    where the last acknowledged record left off.  ``fsync=False`` trades
    durability for speed (tests); the default syncs every record.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        fsync: bool = True,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._fault_plan = fault_plan
        self.records: List[Dict[str, Any]] = []
        self.torn_bytes_dropped = 0
        self.torn_records_dropped = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._load_and_truncate()
        self._handle = open(self.path, "ab")
        if not self.records:
            self._append_raw(_header_record())
        self._sequence = len(self.records)

    # ----------------------------------------------------------- lifecycle
    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *_exc_info: Any) -> None:
        self.close()

    # -------------------------------------------------------------- append
    def append(self, record_type: str, **payload: Any) -> Dict[str, Any]:
        """Append one record durably; returns the record as written.

        Raises :class:`JournalError` for unknown record types and
        :class:`OSError` when the disk does (the manager treats either as
        journal degradation, never as a job failure).
        """
        if record_type not in RECORD_TYPES:
            raise JournalError(f"unknown journal record type {record_type!r}")
        if self._handle is None:
            raise JournalError("journal is closed")
        record = {"n": self._sequence, "type": record_type, **payload}
        fault = (
            self._fault_plan.fire(SITE_JOURNAL_APPEND)
            if self._fault_plan is not None
            else None
        )
        if fault is not None:
            if fault.kind == KIND_TORN_WRITE:
                # A crash mid-write: half the encoded record reaches the
                # disk, the append is never acknowledged.
                data = encode_record(record)
                self._handle.write(data[: max(1, len(data) // 2)])
                self._handle.flush()
                raise injected_torn_write(fault)
            raise fault_exception(fault)
        self._append_raw(record)
        return record

    def _append_raw(self, record: Dict[str, Any]) -> None:
        self._handle.write(encode_record(record))
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self.records.append(record)
        self._sequence = len(self.records)

    # --------------------------------------------------------------- state
    def job_states(self) -> Dict[str, JournaledJob]:
        """Per-job lifecycle state from every record read or appended."""
        return replay_records(self.records)

    def unfinished_jobs(self) -> List[JournaledJob]:
        """Jobs with no terminal record and no later recovery, in order."""
        return [
            entry
            for entry in self.job_states().values()
            if not entry.finished and entry.recovered_to is None
        ]

    def count(self, record_type: str) -> int:
        """How many records of ``record_type`` the journal holds."""
        return sum(1 for record in self.records if record["type"] == record_type)

    # ------------------------------------------------------------ internals
    def _load_and_truncate(self) -> None:
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return
        records, valid_bytes, dropped = _parse(raw)
        if records and not _header_ok(records[0]):
            raise JournalError(
                f"journal {self.path} has an incompatible header: {records[0]!r}"
            )
        self.records = records
        self.torn_records_dropped = dropped
        self.torn_bytes_dropped = len(raw) - valid_bytes
        if self.torn_bytes_dropped:
            with open(self.path, "r+b") as handle:
                handle.truncate(valid_bytes)


def injected_torn_write(fault: Any) -> OSError:
    """The exception surfaced after an injected torn write."""
    return OSError(f"injected torn write at invocation {fault.at}: process died")


def _header_ok(record: Dict[str, Any]) -> bool:
    return (
        record.get("type") == "header"
        and record.get("kind") == JOURNAL_KIND
        and record.get("schema_version") == JOURNAL_SCHEMA_VERSION
    )


def _parse(raw: bytes) -> Tuple[List[Dict[str, Any]], int, int]:
    """(whole records, bytes they span, count of invalid lines dropped)."""
    records: List[Dict[str, Any]] = []
    offset = 0
    dropped = 0
    while offset < len(raw):
        newline = raw.find(b"\n", offset)
        if newline < 0:
            dropped += 1
            break
        line = raw[offset : newline + 1]
        try:
            records.append(decode_line(line))
        except JournalError:
            # Invalid from here on: a torn tail, or corruption that makes
            # everything after it untrustworthy.  Truncate conservatively.
            dropped += 1 + raw.count(b"\n", newline + 1)
            break
        offset = newline + 1
    return records, offset, dropped
