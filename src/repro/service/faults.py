"""Deterministic fault injection for the service stack.

Every recovery path in :mod:`repro.service` -- retry-with-backoff, worker
pool rebuilds, journal torn-tail truncation, cache degradation -- is
exercised by *planned* faults rather than by hoping a real disk fills up.
A :class:`FaultPlan` is a fully deterministic schedule: each
:class:`Fault` names a **site** (a string identifying one instrumented
operation, e.g. ``backend.run``), the 1-based invocation number at which
it fires, and the fault **kind** to inject.  Components that accept a
plan call :meth:`FaultPlan.fire` exactly once per operation, so the same
plan always produces the same failure sequence -- tests assert recovery
behaviour and bit-identity against an unfaulted run.

Plans can also be generated from a seed (:meth:`FaultPlan.seeded`), which
is how the hypothesis suite sweeps the fault space while staying
reproducible from the failing example alone.

The module is import-light on purpose: it must be importable from
:mod:`repro.service.cache` and :mod:`repro.service.journal` without
creating a cycle through the manager, so :class:`FaultingPoolBackend` is
a duck-typed pool backend (the manager never isinstance-checks backends).
"""

from __future__ import annotations

import asyncio
import errno
import random
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

# ------------------------------------------------------------------ sites
#: The manager's pool backend, once per replica attempt.
SITE_BACKEND_RUN = "backend.run"

#: The result cache's disk store, once per attempted shard write.
SITE_CACHE_DISK_PUT = "cache.disk_put"

#: The result cache's disk store, once per attempted shard read.
SITE_CACHE_DISK_GET = "cache.disk_get"

#: The job journal, once per appended record.
SITE_JOURNAL_APPEND = "journal.append"

FAULT_SITES = (
    SITE_BACKEND_RUN,
    SITE_CACHE_DISK_PUT,
    SITE_CACHE_DISK_GET,
    SITE_JOURNAL_APPEND,
)

# ------------------------------------------------------------------ kinds
#: A worker process died (raises a :class:`BrokenProcessPool` subclass).
KIND_CRASH = "crash"

#: The operation never completes / exceeds its deadline.
KIND_TIMEOUT = "timeout"

#: The operating system refused the I/O (``detail`` names the errno).
KIND_IO_ERROR = "io-error"

#: The stored bytes decode to garbage (disk sites only).
KIND_CORRUPT = "corrupt"

#: The write stops halfway through the record (journal site only).
KIND_TORN_WRITE = "torn-write"

#: A permanent, non-retryable failure (a spec/model error stand-in).
KIND_PERMANENT = "permanent"

FAULT_KINDS = (
    KIND_CRASH,
    KIND_TIMEOUT,
    KIND_IO_ERROR,
    KIND_CORRUPT,
    KIND_TORN_WRITE,
    KIND_PERMANENT,
)


class InjectedWorkerCrash(BrokenProcessPool):
    """A planned worker death; subclasses the real pool-broken exception
    so the manager's crash-recovery path is exercised end to end."""


class InjectedPermanentError(ValueError):
    """A planned permanent failure (the retry policy must *not* retry it)."""


def injected_io_error(detail: str = "") -> OSError:
    """An :class:`OSError` for an ``io-error`` fault (``detail`` = errno name)."""
    name = detail or "ENOSPC"
    code = getattr(errno, name, errno.EIO)
    return OSError(code, f"injected {name}")


def fault_exception(fault: "Fault") -> BaseException:
    """The exception a raising site throws for ``fault``.

    ``corrupt`` and ``torn-write`` have no single exception -- the
    instrumented site mangles its own data instead -- so they are rejected
    here; sites that support them special-case those kinds before calling.
    """
    if fault.kind == KIND_CRASH:
        return InjectedWorkerCrash(
            f"injected worker crash (site {fault.site}, invocation {fault.at})"
        )
    if fault.kind == KIND_TIMEOUT:
        return asyncio.TimeoutError(
            f"injected timeout (site {fault.site}, invocation {fault.at})"
        )
    if fault.kind == KIND_IO_ERROR:
        return injected_io_error(fault.detail)
    if fault.kind == KIND_PERMANENT:
        return InjectedPermanentError(
            f"injected permanent failure (site {fault.site}, invocation {fault.at})"
        )
    raise ValueError(f"fault kind {fault.kind!r} has no exception form")


# ------------------------------------------------------------------- plan
@dataclass(frozen=True)
class Fault:
    """One planned fault: fire ``kind`` on the ``at``-th call at ``site``."""

    site: str
    at: int
    kind: str
    detail: str = ""

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; valid kinds: "
                f"{', '.join(FAULT_KINDS)}"
            )
        if self.at < 1:
            raise ValueError(f"fault invocation number must be >= 1, got {self.at}")


class FaultPlan:
    """A deterministic schedule of faults, keyed by ``(site, invocation)``.

    Instrumented components call :meth:`fire` once per operation; the plan
    advances that site's invocation counter and returns the fault due now
    (or ``None``).  Fired faults are logged in :attr:`fired` so tests can
    assert exactly which injections happened.
    """

    def __init__(self, faults: Sequence[Fault] = ()) -> None:
        self._schedule: Dict[Tuple[str, int], Fault] = {}
        for fault in faults:
            slot = (fault.site, fault.at)
            if slot in self._schedule:
                raise ValueError(
                    f"duplicate fault at site {fault.site!r} invocation {fault.at}"
                )
            self._schedule[slot] = fault
        self._counts: Dict[str, int] = {}
        self.fired: List[Fault] = []

    @classmethod
    def seeded(
        cls,
        seed: int,
        site_kinds: Mapping[str, Sequence[str]],
        *,
        invocations: int = 16,
        rate: float = 0.25,
    ) -> "FaultPlan":
        """A reproducible random plan.

        For each site in ``site_kinds`` (mapping site -> the kinds valid
        there) and each of the first ``invocations`` calls, a fault fires
        with probability ``rate``; the kind is drawn uniformly from the
        site's list.  The same seed always builds the same plan.
        """
        rng = random.Random(seed)
        faults: List[Fault] = []
        for site in sorted(site_kinds):
            kinds = list(site_kinds[site])
            for call in range(1, invocations + 1):
                if kinds and rng.random() < rate:
                    faults.append(Fault(site, call, rng.choice(kinds)))
        return cls(faults)

    def fire(self, site: str) -> Optional[Fault]:
        """Advance ``site``'s invocation counter; return the fault due now."""
        count = self._counts.get(site, 0) + 1
        self._counts[site] = count
        fault = self._schedule.get((site, count))
        if fault is not None:
            self.fired.append(fault)
        return fault

    def invocations(self, site: str) -> int:
        """How many times ``site`` has been exercised so far."""
        return self._counts.get(site, 0)

    def pending(self) -> List[Fault]:
        """Scheduled faults that have not fired yet (site order, then at)."""
        return sorted(
            (f for f in self._schedule.values() if f not in self.fired),
            key=lambda f: (f.site, f.at),
        )


# ---------------------------------------------------------------- backend
class FaultingPoolBackend:
    """A pool backend that injects planned faults in front of ``inner``.

    Duck-types :class:`repro.service.manager.PoolBackend` (run / close /
    ``max_workers`` / ``submissions``) so this module never imports the
    manager.  Supported kinds at :data:`SITE_BACKEND_RUN`:

    * ``crash`` -- raises :class:`InjectedWorkerCrash` (a real
      ``BrokenProcessPool`` subclass, so the manager's worker-crash
      recovery path runs);
    * ``timeout`` -- raises :class:`asyncio.TimeoutError` immediately, or,
      with ``hang_on_timeout=True``, blocks forever so the manager's
      per-replica deadline (``asyncio.wait_for``) does the killing;
    * ``io-error`` -- raises the planned :class:`OSError`;
    * ``permanent`` -- raises :class:`InjectedPermanentError` (must not be
      retried).

    ``submissions`` counts only attempts that reached the inner backend,
    so cached-replay accounting stays exact under injected faults.
    """

    def __init__(
        self,
        inner,
        plan: FaultPlan,
        *,
        hang_on_timeout: bool = False,
    ) -> None:
        self.inner = inner
        self.plan = plan
        self.hang_on_timeout = hang_on_timeout
        self.max_workers = inner.max_workers

    @property
    def submissions(self) -> int:
        return self.inner.submissions

    async def run(self, job):
        fault = self.plan.fire(SITE_BACKEND_RUN)
        if fault is not None:
            if fault.kind == KIND_TIMEOUT and self.hang_on_timeout:
                await asyncio.Event().wait()  # cancelled by wait_for
            raise fault_exception(fault)
        return await self.inner.run(job)

    def close(self) -> None:
        self.inner.close()
