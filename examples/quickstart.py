#!/usr/bin/env python3
"""Quickstart: run one commercial workload on all three coherence protocols.

This is the smallest end-to-end use of the library: it simulates the paper's
16-processor target system running the OLTP (TPC-C-like) workload on the
butterfly network under TS-Snoop, DirClassic and DirOpt, then prints the
Figure 3 / Figure 4 style comparison.

Usage::

    python examples/quickstart.py [workload] [network] [scale] [jobs]

e.g. ``python examples/quickstart.py dss torus 0.5 4``.

``jobs`` fans the (protocol x replica) simulations out over that many worker
processes (0 = one per CPU).  The comparison is bit-identical whatever the
value -- parallelism only changes wall-clock time, never results (see the
:mod:`repro.parallel` docstring for the determinism guarantee).
"""

import sys

from repro import api
from repro.analysis.report import format_table


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "oltp"
    network = sys.argv[2] if len(sys.argv) > 2 else "butterfly"
    scale = float(sys.argv[3]) if len(sys.argv) > 3 else 0.4
    jobs = int(sys.argv[4]) if len(sys.argv) > 4 else 1

    print(f"Simulating {workload!r} on the {network} network "
          f"(scale={scale}, jobs={jobs}) ...")
    comparison = api.compare_protocols(workload=workload, network=network,
                                       scale=scale, jobs=jobs)

    rows = []
    for protocol in comparison.protocols():
        result = comparison.results[protocol]
        rows.append([
            protocol,
            result.runtime_ns,
            f"{comparison.normalized_runtime(protocol):.2f}",
            result.misses,
            f"{100 * result.cache_to_cache_fraction:.0f}%",
            f"{result.per_link_bytes:.0f}",
            f"{comparison.normalized_traffic(protocol):.2f}",
            result.nacks,
        ])
    print()
    print(format_table(
        ["protocol", "runtime (ns)", "norm.", "misses", "cache-to-cache",
         "bytes/link", "norm.", "NACKs"],
        rows, title=f"{workload} on {network} (normalised to TS-Snoop)"))

    ts_faster_dirclassic = comparison.speedup_of_baseline_over("dirclassic")
    ts_faster_diropt = comparison.speedup_of_baseline_over("diropt")
    extra_traffic = comparison.extra_traffic_of_baseline_over("diropt")
    print()
    print(f"TS-Snoop is {100 * ts_faster_dirclassic:.0f}% faster than "
          f"DirClassic and {100 * ts_faster_diropt:.0f}% faster than DirOpt, "
          f"while using {100 * extra_traffic:.0f}% more link bandwidth than "
          f"DirOpt -- the paper's latency-for-bandwidth trade-off.")


if __name__ == "__main__":
    main()
