#!/usr/bin/env python3
"""Scenario: why the paper omits DSS under DirClassic.

Figure 3's caption notes that DSS results with DirClassic are omitted
"because runtimes were more than twice as long as those of the other two
protocols, due, in part, to a large number of nacks."  This example
reproduces that pathology: the decision-support workload's hot migratory
records and locks collide at the home directory, DirClassic's busy entries
NACK the losers, and the retries snowball.

The script runs DSS under all three protocols, prints the NACK/retry volume
and runtime blow-up, and contrasts it with the well-behaved OLTP workload.

Usage::

    python examples/dss_nack_storm.py [scale]
"""

import sys

from repro import api
from repro.analysis.report import format_table


def run(workload: str, scale: float):
    comparison = api.compare_protocols(workload=workload, network="butterfly",
                                       scale=scale)
    rows = []
    for protocol in comparison.protocols():
        result = comparison.results[protocol]
        rows.append([
            workload, protocol,
            f"{comparison.normalized_runtime(protocol):.2f}",
            result.nacks, result.retries,
            f"{result.average_miss_latency_ns:.0f}",
        ])
    return comparison, rows


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.4

    dss_comparison, dss_rows = run("dss", scale)
    _oltp_comparison, oltp_rows = run("oltp", scale)

    print(format_table(
        ["workload", "protocol", "runtime / TS-Snoop", "NACKs", "retries",
         "avg miss latency (ns)"],
        dss_rows + oltp_rows,
        title="DSS contention versus OLTP (butterfly network)"))

    blowup = dss_comparison.normalized_runtime("dirclassic")
    print()
    print(f"DirClassic runs DSS {blowup:.2f}x slower than TS-Snoop; the paper "
          f"omits this bar from Figure 3 for exceeding 2x.")
    print("DirOpt, which never NACKs, and TS-Snoop, which has no directory "
          "to collide at, both stay close to their usual behaviour.")


if __name__ == "__main__":
    main()
