#!/usr/bin/env python3
"""Regenerate Table 2 (unloaded latencies) and explore what-if variants.

Prints the paper's Table 2 from the closed-form latency model, then shows
how the snooping-vs-directory cache-to-cache gap changes with faster
switches or slower memory -- the sensitivity the paper's conclusion alludes
to ("worth considering when buying more interconnect bandwidth is easier
than reducing interconnect latency").

Usage::

    python examples/latency_table.py
"""

from repro.analysis.latency_model import LatencyModel, table2_latencies
from repro.analysis.report import format_table
from repro.network.timing import NetworkTiming
from repro.protocols.base import ProtocolTiming


def print_table2() -> None:
    rows = []
    for topology, latencies in table2_latencies().items():
        rows.append([topology, latencies.one_way_ns,
                     latencies.block_from_memory_ns,
                     latencies.block_from_cache_snooping_ns,
                     latencies.block_from_cache_directory_ns])
    print(format_table(
        ["topology", "one-way", "from memory", "cache-to-cache (snooping)",
         "cache-to-cache (directory, 3 hops)"],
        rows, title="Table 2 — unloaded latencies (ns)"))


def print_sensitivity() -> None:
    rows = []
    for switch_ns in (5, 10, 15, 25):
        model = LatencyModel(NetworkTiming(overhead_ns=4, switch_ns=switch_ns),
                             ProtocolTiming())
        butterfly = model.for_hops("butterfly", 3)
        rows.append([switch_ns,
                     butterfly.block_from_cache_snooping_ns,
                     butterfly.block_from_cache_directory_ns,
                     f"{butterfly.snooping_to_directory_ratio:.2f}"])
    print()
    print(format_table(
        ["Dswitch (ns)", "snooping c2c (ns)", "directory c2c (ns)",
         "snooping / directory"],
        rows, title="Sensitivity: switch latency vs the 3-hop penalty "
                    "(butterfly)"))
    print()
    print("Slower links widen the directory's three-hop penalty (snooping's "
          "relative advantage grows); extremely fast links shrink it, which "
          "is when directories become competitive on latency as well.")


if __name__ == "__main__":
    print_table2()
    print_sensitivity()
