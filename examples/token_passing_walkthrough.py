#!/usr/bin/env python3
"""Figure 1 walkthrough: the token-passing switch, step by step.

Replays the paper's Figure 1 example on a standalone 2x2 switch, printing
the switch state after every step, and then demonstrates the same logical
time machinery end-to-end on the full 4x4 torus: several processors
broadcast address transactions at different times, every endpoint receives
them at different physical times, and every endpoint processes them in the
identical total order.

Usage::

    python examples/token_passing_walkthrough.py
"""

from repro.core.timestamp_network import TimestampAddressNetwork
from repro.core.token_switch import BufferedTransaction, TokenSwitch
from repro.network import make_topology
from repro.network.message import Message, MessageKind
from repro.network.timing import NetworkTiming
from repro.sim.kernel import Simulator


def figure1_walkthrough() -> None:
    print("=" * 72)
    print("Figure 1: token passing through a simplified 2x2 switch")
    print("=" * 72)
    switch = TokenSwitch("2x2", input_ports=["top", "bottom"],
                         output_ports=["top", "bottom"], initial_tokens=1)
    message = BufferedTransaction(payload="msg", slack=1, source=0)

    print("(a) empty buffer; a message with slack 1 arrives on the top input")
    switch.receive_transaction("top", message)
    print(f"(b) buffered past one waiting token -> slack is now {message.slack}")

    switch.receive_token("top")
    switch.receive_token("bottom")
    print(f"(c) tokens arrive on both inputs -> counters {switch.token_counts}")

    switch.propagate_token()
    print(f"(d) the switch issues a token on each output; it passes the "
          f"buffered message -> slack back to {message.slack}, "
          f"GT now {switch.guarantee_time}")

    copies = switch.release_transaction(message, [("top", 1), ("bottom", 0)])
    for port, copy in copies:
        print(f"(e) copy sent on {port!r} carries slack {copy.slack} "
              f"(the shorter branch gets the delta-D adjustment)")
    print()


def torus_total_order_demo() -> None:
    print("=" * 72)
    print("Total order on the 4x4 torus: delivered out of order, processed "
          "in order")
    print("=" * 72)
    topology = make_topology("torus")
    sim = Simulator()
    network = TimestampAddressNetwork(sim, topology, NetworkTiming())
    log = {endpoint: [] for endpoint in topology.endpoints()}
    for endpoint in topology.endpoints():
        network.attach(endpoint,
                       lambda d, e=endpoint: log[e].append(d))
    network.start()

    injections = [(0, 0), (15, 0), (5, 20), (10, 35)]
    for index, (source, time) in enumerate(injections):
        message = Message(MessageKind.GETS, src=source, dst=None, block=index)
        sim.schedule_at(time, lambda m=message: network.broadcast(m))
    sim.run(until=3_000)

    print(f"{len(injections)} transactions broadcast from nodes "
          f"{[src for src, _t in injections]} at times "
          f"{[t for _src, t in injections]}\n")
    for endpoint in (0, 5, 15):
        entries = ", ".join(
            f"src {d.message.src} (arrived {d.arrival_time} ns, "
            f"processed {d.ordered_time} ns)"
            for d in log[endpoint])
        print(f"endpoint {endpoint:2d}: {entries}")
    orders = {tuple(d.message.msg_id for d in log[e]) for e in log}
    print(f"\nidentical processing order at all 16 endpoints: "
          f"{len(orders) == 1}")


if __name__ == "__main__":
    figure1_walkthrough()
    torus_total_order_demo()
