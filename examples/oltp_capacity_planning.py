#!/usr/bin/env python3
"""Scenario: should the next OLTP server use snooping or a directory?

A systems architect sizing a 16-way database machine wants to know how much
of TS-Snoop's latency advantage survives as the interconnect and block size
change -- exactly the trade-off the paper's conclusion describes ("timestamp
snooping is worth considering when buying more interconnect bandwidth is
easier than reducing interconnect latency").

The script sweeps the OLTP workload across:

* both evaluated topologies (indirect butterfly, direct torus),
* both coherence styles (TS-Snoop vs. the NACK-free directory),

and prints runtime, per-link traffic, and the analytic worst-case traffic
penalty at 64- and 128-byte blocks.

With ``--service`` the sweep is submitted through the simulation service
(:mod:`repro.service`) as two overlapping planning sessions sharing one
job manager: the service's content-addressed cache dedups the second
session's identical requests, so each unique experiment is simulated
exactly once and the second architect gets their answers for free.

Usage::

    python examples/oltp_capacity_planning.py [scale] [--service]
"""

import sys

from repro import api
from repro.analysis.report import format_table
from repro.analysis.traffic_model import per_miss_bytes
from repro.network import make_topology
from repro.system.results import ProtocolComparison

NETWORKS = ("butterfly", "torus")
PROTOCOLS = ("ts-snoop", "diropt")


def sweep_direct(scale):
    """One comparison per network via the one-shot convenience API."""
    return {network: api.compare_protocols(
                workload="oltp", network=network, scale=scale,
                protocols=PROTOCOLS)
            for network in NETWORKS}


def sweep_via_service(scale):
    """The same sweep through the job manager, twice, deduplicated.

    Two overlapping "planning sessions" submit the identical experiment
    grid to one shared service.  The content-addressed result cache and
    in-flight join guarantee each unique (config, workload, replica) is
    simulated once; the second session replays bit-identical results.
    """
    import asyncio

    from repro.api.spec import ExperimentSpec
    from repro.service import JobManager, ResultCache

    specs = [ExperimentSpec.make("oltp", protocol=protocol, network=network,
                                 scale=scale)
             for network in NETWORKS for protocol in PROTOCOLS]

    async def run():
        async with JobManager(cache=ResultCache()) as manager:
            first = [manager.submit(spec) for spec in specs]
            second = [manager.submit(spec) for spec in specs]
            await manager.drain()
            results = [await handle.result() for handle in first]
            replayed = [await handle.result() for handle in second]
        return manager, results, replayed

    manager, results, replayed = asyncio.run(run())
    assert results == replayed, "replayed session must be bit-identical"

    replicas = manager.snapshot()["replicas"]
    print("service: %d experiments requested, %d simulated, %d replayed "
          "from cache -- the second session was free"
          % (2 * len(specs), replicas["replicas_computed"],
             replicas["replicas_from_cache"]))
    print()

    comparisons = {}
    for network in NETWORKS:
        comparison = ProtocolComparison(workload="oltp", network=network,
                                        baseline_protocol=PROTOCOLS[0])
        for spec, result in zip(specs, results):
            if spec.network == network:
                comparison.add(result)
        comparisons[network] = comparison
    return comparisons


def main() -> None:
    argv = list(sys.argv[1:])
    use_service = "--service" in argv
    if use_service:
        argv.remove("--service")
    scale = float(argv[0]) if argv else 0.4

    sweep = sweep_via_service if use_service else sweep_direct
    comparisons = sweep(scale)

    rows = []
    for network in NETWORKS:
        comparison = comparisons[network]
        snoop = comparison.results["ts-snoop"]
        directory = comparison.results["diropt"]
        speedup = comparison.speedup_of_baseline_over("diropt")
        extra = comparison.extra_traffic_of_baseline_over("diropt")
        rows.append([network, snoop.runtime_ns, directory.runtime_ns,
                     f"+{100 * speedup:.0f}%",
                     f"{snoop.per_link_bytes:.0f}",
                     f"{directory.per_link_bytes:.0f}",
                     f"+{100 * extra:.0f}%"])

    print(format_table(
        ["network", "TS-Snoop ns", "DirOpt ns", "TS advantage",
         "TS B/link", "Dir B/link", "TS extra traffic"],
        rows, title="OLTP: latency vs. bandwidth across interconnects"))

    print()
    print("Worst-case extra bandwidth per miss (Section 5 bound):")
    bound_rows = []
    for block_bytes in (64, 128):
        for network in NETWORKS:
            bound = per_miss_bytes(make_topology(network), block_bytes)
            bound_rows.append([network, block_bytes,
                               f"+{100 * bound.extra_fraction:.0f}%"])
    print(format_table(["network", "block size (B)", "max extra traffic"],
                       bound_rows))
    print()
    print("Reading: if the planned interconnect has bandwidth headroom of "
          "at least the 'TS extra traffic' column, timestamp snooping "
          "converts it into the runtime advantage shown; otherwise the "
          "directory is the safer choice.")


if __name__ == "__main__":
    main()
