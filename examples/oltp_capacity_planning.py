#!/usr/bin/env python3
"""Scenario: should the next OLTP server use snooping or a directory?

A systems architect sizing a 16-way database machine wants to know how much
of TS-Snoop's latency advantage survives as the interconnect and block size
change -- exactly the trade-off the paper's conclusion describes ("timestamp
snooping is worth considering when buying more interconnect bandwidth is
easier than reducing interconnect latency").

The script sweeps the OLTP workload across:

* both evaluated topologies (indirect butterfly, direct torus),
* both coherence styles (TS-Snoop vs. the NACK-free directory),

and prints runtime, per-link traffic, and the analytic worst-case traffic
penalty at 64- and 128-byte blocks.

Usage::

    python examples/oltp_capacity_planning.py [scale]
"""

import sys

from repro import api
from repro.analysis.report import format_table
from repro.analysis.traffic_model import per_miss_bytes
from repro.network import make_topology


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.4

    rows = []
    for network in ("butterfly", "torus"):
        comparison = api.compare_protocols(
            workload="oltp", network=network, scale=scale,
            protocols=("ts-snoop", "diropt"))
        snoop = comparison.results["ts-snoop"]
        directory = comparison.results["diropt"]
        speedup = comparison.speedup_of_baseline_over("diropt")
        extra = comparison.extra_traffic_of_baseline_over("diropt")
        rows.append([network, snoop.runtime_ns, directory.runtime_ns,
                     f"+{100 * speedup:.0f}%",
                     f"{snoop.per_link_bytes:.0f}",
                     f"{directory.per_link_bytes:.0f}",
                     f"+{100 * extra:.0f}%"])

    print(format_table(
        ["network", "TS-Snoop ns", "DirOpt ns", "TS advantage",
         "TS B/link", "Dir B/link", "TS extra traffic"],
        rows, title="OLTP: latency vs. bandwidth across interconnects"))

    print()
    print("Worst-case extra bandwidth per miss (Section 5 bound):")
    bound_rows = []
    for block_bytes in (64, 128):
        for network in ("butterfly", "torus"):
            bound = per_miss_bytes(make_topology(network), block_bytes)
            bound_rows.append([network, block_bytes,
                               f"+{100 * bound.extra_fraction:.0f}%"])
    print(format_table(["network", "block size (B)", "max extra traffic"],
                       bound_rows))
    print()
    print("Reading: if the planned interconnect has bandwidth headroom of "
          "at least the 'TS extra traffic' column, timestamp snooping "
          "converts it into the runtime advantage shown; otherwise the "
          "directory is the safer choice.")


if __name__ == "__main__":
    main()
